package analysis

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"verfploeter/internal/atlas"
	"verfploeter/internal/ipv4"
	"verfploeter/internal/loadmodel"
	"verfploeter/internal/scenario"
	"verfploeter/internal/topology"
	"verfploeter/internal/verfploeter"
)

func brootWorld(t *testing.T) (*scenario.Scenario, *verfploeter.Catchment, *atlas.Result) {
	t.Helper()
	s := scenario.BRoot(topology.SizeSmall, 1)
	catch, _, err := s.Measure(1)
	if err != nil {
		t.Fatal(err)
	}
	plat := atlas.New(s.Top, 120, s.Seed) // scaled-down 9.8k VPs
	res := plat.Measure(s.Net, s, 0)
	return s, catch, res
}

func TestCompareCoverage(t *testing.T) {
	s, catch, res := brootWorld(t)
	cov := CompareCoverage(res, catch, s.Hitlist, s.GeoDB)

	if cov.AtlasVPsConsidered != 120 {
		t.Errorf("AtlasVPsConsidered = %d", cov.AtlasVPsConsidered)
	}
	if cov.AtlasVPsResponding+cov.AtlasVPsNonResponding != cov.AtlasVPsConsidered {
		t.Error("Atlas VP accounting broken")
	}
	if cov.AtlasBlocksResponding > cov.AtlasBlocksConsidered {
		t.Error("responding blocks exceed considered")
	}
	if cov.VerfConsidered != s.Hitlist.Len() {
		t.Errorf("VerfConsidered = %d", cov.VerfConsidered)
	}
	if cov.VerfResponding+cov.VerfNonResponding != cov.VerfConsidered {
		t.Error("Verfploeter accounting broken")
	}
	if cov.VerfGeolocatable+cov.VerfNoLocation != cov.VerfResponding {
		t.Error("geolocation accounting broken")
	}
	// The headline: orders of magnitude more blocks than Atlas.
	if cov.Ratio < 20 {
		t.Errorf("coverage ratio = %.1fx, want >> 1 (paper: 430x)", cov.Ratio)
	}
	// Most Atlas blocks also seen by Verfploeter (paper: 77%).
	overlapFrac := float64(cov.Overlap) / float64(cov.AtlasBlocksResponding)
	if overlapFrac < 0.35 {
		t.Errorf("only %.2f of Atlas blocks seen by Verfploeter", overlapFrac)
	}
	if cov.VerfUnique <= cov.AtlasUnique {
		t.Error("Verfploeter should see far more unique blocks")
	}
}

func tangledWorld(t *testing.T) (*scenario.Scenario, *verfploeter.Catchment) {
	t.Helper()
	s := scenario.Tangled(topology.SizeSmall, 1)
	catch, _, err := s.Measure(1)
	if err != nil {
		t.Fatal(err)
	}
	return s, catch
}

func TestDivisions(t *testing.T) {
	s, catch := tangledWorld(t)
	d := Divisions(s.Top, catch, nil)
	if d.MappedASes == 0 {
		t.Fatal("no mapped ASes")
	}
	if d.SplitASes == 0 {
		t.Error("expected some split ASes (multi-PoP + multihomed)")
	}
	frac := d.SplitFrac()
	// Paper: 12.7% of ASes split (with 2-9 sites); ranges are loose.
	if frac < 0.01 || frac > 0.5 {
		t.Errorf("split fraction = %.3f", frac)
	}
	sum := 0
	for _, n := range d.SitesHist {
		sum += n
	}
	if sum != d.MappedASes {
		t.Error("SitesHist does not sum to MappedASes")
	}
	if d.SitesHist[0] != d.MappedASes-d.SplitASes {
		t.Error("single-site histogram bucket inconsistent")
	}
}

func TestDivisionsInstabilityFilter(t *testing.T) {
	s, catch, _ := brootWorld(t)
	// Mark some mapped blocks as unstable: divisions must not grow.
	unstable := ipv4.NewBlockSet(0)
	i := 0
	catch.Range(func(b ipv4.Block, _ int) bool {
		if i%3 == 0 {
			unstable.Add(b)
		}
		i++
		return true
	})
	all := Divisions(s.Top, catch, nil)
	filtered := Divisions(s.Top, catch, unstable)
	if filtered.SplitASes > all.SplitASes {
		t.Errorf("filtering instability increased splits: %d > %d",
			filtered.SplitASes, all.SplitASes)
	}
}

func TestPrefixSpread(t *testing.T) {
	s, catch := tangledWorld(t)
	rows := PrefixSpread(s.Top, catch, nil)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.P5 > r.P25 || r.P25 > r.Median || r.Median > r.P75 || r.P75 > r.P95 {
			t.Errorf("percentiles out of order: %+v", r)
		}
	}
	// Figure 7's shape: ASes seen at more sites announce more prefixes
	// (compare the single-site and the most-split rows).
	if len(rows) >= 2 {
		first, last := rows[0], rows[len(rows)-1]
		if last.Median < first.Median {
			t.Errorf("median prefixes should grow with sites: %v -> %v",
				first.Median, last.Median)
		}
	}
}

func TestSitesByPrefixLen(t *testing.T) {
	s, catch := tangledWorld(t)
	rows := SitesByPrefixLen(s.Top, catch, nil)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	var shortFrac, longFrac float64
	var shortSeen, longSeen bool
	for _, r := range rows {
		sum := 0
		for _, n := range r.SitesHist {
			sum += n
		}
		if sum != r.Prefixes {
			t.Errorf("/%d histogram sums to %d of %d", r.Bits, sum, r.Prefixes)
		}
		if r.Bits <= 16 && r.Prefixes >= 3 && !shortSeen {
			shortFrac, shortSeen = r.FracMultiSite(), true
		}
		if r.Bits == 24 {
			longFrac, longSeen = r.FracMultiSite(), true
		}
	}
	// Figure 8's shape: large prefixes split more often than /24s.
	if shortSeen && longSeen && shortFrac < longFrac {
		t.Errorf("short prefixes should split more: /<=16 %.2f vs /24 %.2f", shortFrac, longFrac)
	}
}

func TestStabilityAndFlipAttribution(t *testing.T) {
	s := scenario.Tangled(topology.SizeSmall, 2)
	rounds, err := s.MeasureRounds(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	series := Stability(rounds)
	if len(series) != 5 {
		t.Fatalf("%d series points", len(series))
	}
	med := MedianStability(series)
	total := med.Stable + med.Flipped + med.ToNR
	if total == 0 {
		t.Fatal("empty stability")
	}
	stableFrac := float64(med.Stable) / float64(total)
	if stableFrac < 0.85 {
		t.Errorf("stable fraction %.3f, want ~0.95", stableFrac)
	}
	flipFrac := float64(med.Flipped) / float64(total)
	if flipFrac > 0.05 {
		t.Errorf("flip fraction %.4f, want ~0.001-0.01", flipFrac)
	}

	unstable := UnstableBlocks(rounds)
	if med.Flipped > 0 && unstable.Len() == 0 {
		t.Error("flips observed but no unstable blocks recorded")
	}

	rows := FlipAttribution(s.Top, rounds)
	if len(rows) == 0 {
		t.Skip("no flips this seed")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Flips > rows[i-1].Flips {
			t.Fatal("FlipAttribution not sorted")
		}
	}
	// Flips concentrate: top-5 share well above uniform.
	top5 := TopFlipShare(rows, 5)
	if len(rows) > 10 && top5 < 0.3 {
		t.Errorf("top-5 flip share %.2f, want concentration (paper: 0.63)", top5)
	}
	// CHINANET should be prominent among flippers when present.
	found := false
	for i, r := range rows {
		if r.ASN == 4134 && i < 5 {
			found = true
		}
	}
	if !found {
		t.Log("note: CHINANET not in top-5 flippers this seed")
	}
}

func TestStabilityEdgeCases(t *testing.T) {
	if Stability(nil) != nil {
		t.Error("nil rounds should give nil")
	}
	one := []*verfploeter.Catchment{verfploeter.NewCatchment(2)}
	if Stability(one) != nil {
		t.Error("single round should give nil")
	}
	if (MedianStability(nil) != verfploeter.DiffStats{}) {
		t.Error("empty median should be zero")
	}
	if TopFlipShare(nil, 5) != 0 {
		t.Error("empty flip share should be 0")
	}
}

func TestGrids(t *testing.T) {
	s, catch, res := brootWorld(t)

	cg := CatchmentGrid(catch, s.GeoDB)
	if cg.Len() == 0 {
		t.Fatal("empty catchment grid")
	}
	ag := AtlasGrid(res, 2)
	if ag.Len() == 0 {
		t.Fatal("empty atlas grid")
	}
	// Verfploeter's grid must cover far more cells than Atlas's —
	// that is Figure 2's visual point.
	if cg.Len() <= ag.Len() {
		t.Errorf("catchment grid %d cells <= atlas grid %d", cg.Len(), ag.Len())
	}

	log := s.RootLog()
	lg := LoadGrid(catch, log, s.GeoDB, loadmodel.ByQueries)
	if lg.Len() == 0 {
		t.Fatal("empty load grid")
	}

	var buf bytes.Buffer
	if err := RenderGrid(&buf, cg, s.SiteLetters()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "L") || !strings.Contains(out, "M") {
		t.Error("rendered map should show both site letters")
	}
	if !strings.Contains(out, "cont") {
		t.Error("rendered map should include the continent table")
	}
}

func TestCountryBreakdown(t *testing.T) {
	s, catch, _ := brootWorld(t)
	rows := CountryBreakdown(s.Top, catch)
	if len(rows) < 10 {
		t.Fatalf("only %d countries", len(rows))
	}
	total := 0
	for i, r := range rows {
		if i > 0 && r.Blocks > rows[i-1].Blocks {
			t.Fatal("rows not sorted by blocks")
		}
		sum := 0
		for _, n := range r.BySite {
			sum += n
		}
		if sum != r.Blocks {
			t.Fatalf("%s: per-site sum %d != blocks %d", r.Country, sum, r.Blocks)
		}
		total += r.Blocks
		if d := r.DominantSite(); d < 0 || d >= 2 {
			t.Fatalf("%s: dominant site %d", r.Country, d)
		}
		if sh := r.Share(r.DominantSite()); sh < 0.5-1e-9 && len(r.BySite) == 2 && r.Blocks > 1 {
			// With two sites the dominant one holds at least half.
			t.Fatalf("%s: dominant share %.2f", r.Country, sh)
		}
	}
	if total != catch.Len() {
		t.Fatalf("breakdown covers %d of %d blocks", total, catch.Len())
	}
	// §5.1's question is answerable: China appears with data.
	foundCN := false
	for _, r := range rows {
		if r.Country == "CN" && r.Blocks > 0 {
			foundCN = true
		}
	}
	if !foundCN {
		t.Error("no China rows — the §5.1 coverage claim needs them")
	}
	// Edge cases.
	if (CountryRow{}).DominantSite() != -1 {
		t.Error("empty row dominant site should be -1")
	}
	if (CountryRow{}).Share(0) != 0 {
		t.Error("empty row share should be 0")
	}
}

func TestConsensus(t *testing.T) {
	mk := func(pairs ...any) *verfploeter.Catchment {
		c := verfploeter.NewCatchment(3)
		for i := 0; i < len(pairs); i += 2 {
			c.Set(pairs[i].(ipv4.Block), pairs[i+1].(int))
		}
		return c
	}
	b1, b2, b3 := ipv4.Block(1), ipv4.Block(2), ipv4.Block(3)
	rounds := []*verfploeter.Catchment{
		mk(b1, 0, b2, 1, b3, 2),
		mk(b1, 0, b2, 1),
		mk(b1, 0, b2, 2),
	}
	c := Consensus(rounds, 2)
	if s, ok := c.SiteOf(b1); !ok || s != 0 {
		t.Errorf("b1 = %d, %v", s, ok)
	}
	if s, ok := c.SiteOf(b2); !ok || s != 1 {
		t.Errorf("b2 should take the 2-of-3 majority, got %d, %v", s, ok)
	}
	if _, ok := c.SiteOf(b3); ok {
		t.Error("b3 seen once should fall below minRounds=2")
	}
	// minRounds=1 keeps it.
	if _, ok := Consensus(rounds, 1).SiteOf(b3); !ok {
		t.Error("minRounds=1 should keep single-sighting blocks")
	}
	if Consensus(nil, 1).Len() != 0 {
		t.Error("empty campaign should give empty catchment")
	}
}

func TestConsensusOnCampaign(t *testing.T) {
	s := scenario.Tangled(topology.SizeTiny, 3)
	rounds, err := s.MeasureRounds(5, 50)
	if err != nil {
		t.Fatal(err)
	}
	c := Consensus(rounds, 3)
	if c.Len() == 0 {
		t.Fatal("empty consensus")
	}
	// Consensus is at least as large as the intersection and no larger
	// than the union of rounds.
	union := ipv4.NewBlockSet(0)
	for _, r := range rounds {
		r.Range(func(b ipv4.Block, _ int) bool { union.Add(b); return true })
	}
	if c.Len() > union.Len() {
		t.Fatalf("consensus %d exceeds union %d", c.Len(), union.Len())
	}
	// A consensus block's site should be the modal site across rounds.
	checked := 0
	c.Range(func(b ipv4.Block, site int) bool {
		counts := map[int]int{}
		for _, r := range rounds {
			if s2, ok := r.SiteOf(b); ok {
				counts[s2]++
			}
		}
		bestN := 0
		for _, n := range counts {
			if n > bestN {
				bestN = n
			}
		}
		if counts[site] != bestN {
			t.Fatalf("block %v consensus site %d is not modal", b, site)
		}
		checked++
		return checked < 500
	})
	return
}

// Both report sorts carry explicit tie-break keys (country code, ASN) so
// repeated runs over the same inputs — whose aggregation walks Go maps in
// randomized order — always emit rows in the same order.
func TestReportOrderingDeterministic(t *testing.T) {
	s := scenario.BRoot(topology.SizeTiny, 3)
	rounds, err := s.MeasureRounds(3, 1)
	if err != nil {
		t.Fatal(err)
	}

	wantRows := CountryBreakdown(s.Top, rounds[0])
	wantFlips := FlipAttribution(s.Top, rounds)
	if len(wantRows) < 2 {
		t.Fatalf("want multiple country rows, got %d", len(wantRows))
	}
	for i := 0; i < 25; i++ {
		if got := CountryBreakdown(s.Top, rounds[0]); !reflect.DeepEqual(got, wantRows) {
			t.Fatalf("run %d: CountryBreakdown ordering changed", i)
		}
		if got := FlipAttribution(s.Top, rounds); !reflect.DeepEqual(got, wantFlips) {
			t.Fatalf("run %d: FlipAttribution ordering changed", i)
		}
	}
}
