package analysis

import (
	"sort"

	"verfploeter/internal/ipv4"
	"verfploeter/internal/topology"
	"verfploeter/internal/verfploeter"
)

// §5.1 asks questions like "how a host in China might select a B-Root
// site: Atlas cannot comment, but Verfploeter shows most of China selects
// the MIA site". CountryBreakdown answers them in general: per-country
// block counts split by site.

// CountryRow is one country's catchment split.
type CountryRow struct {
	Country string
	Blocks  int
	// BySite[s] is the number of mapped blocks reaching site s.
	BySite []int
}

// DominantSite returns the site serving most of the country's blocks
// (-1 if empty).
func (r CountryRow) DominantSite() int {
	best, bestN := -1, 0
	for s, n := range r.BySite {
		if n > bestN {
			best, bestN = s, n
		}
	}
	return best
}

// Share returns site s's share of the country's mapped blocks.
func (r CountryRow) Share(s int) float64 {
	if r.Blocks == 0 || s < 0 || s >= len(r.BySite) {
		return 0
	}
	return float64(r.BySite[s]) / float64(r.Blocks)
}

// CountryBreakdown tallies the catchment by client country, descending by
// mapped blocks.
func CountryBreakdown(top *topology.Topology, catch *verfploeter.Catchment) []CountryRow {
	byCountry := map[uint16]*CountryRow{}
	catch.Range(func(b ipv4.Block, site int) bool {
		bi := top.BlockIndex(b)
		if bi < 0 {
			return true
		}
		ci := top.Blocks[bi].CountryIdx
		row := byCountry[ci]
		if row == nil {
			row = &CountryRow{
				Country: topology.Countries[ci].Code,
				BySite:  make([]int, catch.NSite),
			}
			byCountry[ci] = row
		}
		row.Blocks++
		row.BySite[site]++
		return true
	})
	out := make([]CountryRow, 0, len(byCountry))
	for _, row := range byCountry {
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Blocks != out[j].Blocks {
			return out[i].Blocks > out[j].Blocks
		}
		return out[i].Country < out[j].Country
	})
	return out
}
