package analysis

import (
	"sort"

	"verfploeter/internal/ipv4"
	"verfploeter/internal/topology"
	"verfploeter/internal/verfploeter"
)

// §6.2: prior work often assumed one VP can stand in for its whole AS.
// Verfploeter's density lets us count how many ASes are actually served
// by more than one site. Unstable blocks are removed first, "to prevent
// unstable routing from being classified as a division within the AS"
// (the paper measures the difference at about 2%).

// DivisionStats summarizes split ASes.
type DivisionStats struct {
	MappedASes int // ASes with at least one mapped block
	SplitASes  int // of those, ASes seeing more than one site
	// SitesHist[k] = number of ASes seeing exactly k+1 sites.
	SitesHist []int
}

// SplitFrac returns the fraction of mapped ASes that are split.
func (d DivisionStats) SplitFrac() float64 {
	if d.MappedASes == 0 {
		return 0
	}
	return float64(d.SplitASes) / float64(d.MappedASes)
}

// asSites collects, for every AS index, the distinct sites its stable
// blocks mapped to.
func asSites(top *topology.Topology, catch *verfploeter.Catchment, unstable *ipv4.BlockSet) map[int32]map[int]bool {
	out := map[int32]map[int]bool{}
	catch.Range(func(b ipv4.Block, site int) bool {
		if unstable != nil && unstable.Contains(b) {
			return true
		}
		bi := top.BlockIndex(b)
		if bi < 0 {
			return true
		}
		asIdx := top.Blocks[bi].ASIdx
		m := out[asIdx]
		if m == nil {
			m = map[int]bool{}
			out[asIdx] = m
		}
		m[site] = true
		return true
	})
	return out
}

// Divisions counts ASes served by multiple sites.
func Divisions(top *topology.Topology, catch *verfploeter.Catchment, unstable *ipv4.BlockSet) DivisionStats {
	perAS := asSites(top, catch, unstable)
	var d DivisionStats
	maxSites := 0
	for _, sites := range perAS {
		if len(sites) > maxSites {
			maxSites = len(sites)
		}
	}
	d.SitesHist = make([]int, maxSites)
	for _, sites := range perAS {
		d.MappedASes++
		d.SitesHist[len(sites)-1]++
		if len(sites) > 1 {
			d.SplitASes++
		}
	}
	return d
}

// PrefixesVsSites is one row of Figure 7: among ASes seeing exactly
// Sites sites, the distribution of how many prefixes they announce.
type PrefixesVsSites struct {
	Sites                     int
	ASes                      int
	P5, P25, Median, P75, P95 float64
}

// PrefixSpread builds Figure 7's series: ASes that announce more
// prefixes tend to be seen by more sites.
func PrefixSpread(top *topology.Topology, catch *verfploeter.Catchment, unstable *ipv4.BlockSet) []PrefixesVsSites {
	perAS := asSites(top, catch, unstable)
	byCount := map[int][]float64{}
	for asIdx, sites := range perAS {
		byCount[len(sites)] = append(byCount[len(sites)], float64(len(top.ASes[asIdx].Prefixes)))
	}
	counts := make([]int, 0, len(byCount))
	for k := range byCount {
		counts = append(counts, k)
	}
	sort.Ints(counts)
	out := make([]PrefixesVsSites, 0, len(counts))
	for _, k := range counts {
		v := byCount[k]
		sort.Float64s(v)
		out = append(out, PrefixesVsSites{
			Sites: k, ASes: len(v),
			P5: percentile(v, 0.05), P25: percentile(v, 0.25),
			Median: percentile(v, 0.5),
			P75:    percentile(v, 0.75), P95: percentile(v, 0.95),
		})
	}
	return out
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := p * float64(len(sorted)-1)
	lo := int(idx)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := idx - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// PrefixLenRow is one panel of Figure 8: for announced prefixes of a
// given length, how many sites the VPs inside each prefix see.
type PrefixLenRow struct {
	Bits     uint8
	Prefixes int
	// SitesHist[k] = prefixes whose blocks see exactly k+1 sites.
	SitesHist []int
}

// FracMultiSite returns the fraction of this row's prefixes that see
// more than one site.
func (r PrefixLenRow) FracMultiSite() float64 {
	if r.Prefixes == 0 {
		return 0
	}
	multi := 0
	for k, n := range r.SitesHist {
		if k >= 1 {
			multi += n
		}
	}
	return float64(multi) / float64(r.Prefixes)
}

// SitesByPrefixLen builds Figure 8: larger (shorter) prefixes are more
// often split across catchments and need multiple VPs to map.
func SitesByPrefixLen(top *topology.Topology, catch *verfploeter.Catchment, unstable *ipv4.BlockSet) []PrefixLenRow {
	// Distinct sites per announced prefix.
	type pfxKey struct {
		asIdx int32
		pfx   uint16
	}
	sites := map[pfxKey]map[int]bool{}
	catch.Range(func(b ipv4.Block, site int) bool {
		if unstable != nil && unstable.Contains(b) {
			return true
		}
		bi := top.BlockIndex(b)
		if bi < 0 {
			return true
		}
		info := &top.Blocks[bi]
		k := pfxKey{info.ASIdx, info.PrefixIdx}
		m := sites[k]
		if m == nil {
			m = map[int]bool{}
			sites[k] = m
		}
		m[site] = true
		return true
	})

	byLen := map[uint8]*PrefixLenRow{}
	for k, m := range sites {
		bits := top.ASes[k.asIdx].Prefixes[k.pfx].Bits
		row := byLen[bits]
		if row == nil {
			row = &PrefixLenRow{Bits: bits}
			byLen[bits] = row
		}
		row.Prefixes++
		for len(row.SitesHist) < len(m) {
			row.SitesHist = append(row.SitesHist, 0)
		}
		row.SitesHist[len(m)-1]++
	}

	lens := make([]int, 0, len(byLen))
	for b := range byLen {
		lens = append(lens, int(b))
	}
	sort.Ints(lens)
	out := make([]PrefixLenRow, 0, len(lens))
	for _, b := range lens {
		out = append(out, *byLen[uint8(b)])
	}
	return out
}
