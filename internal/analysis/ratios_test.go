package analysis

import (
	"math"
	"testing"

	"verfploeter/internal/atlas"
	"verfploeter/internal/geo"
	"verfploeter/internal/hitlist"
	"verfploeter/internal/ipv4"
	"verfploeter/internal/verfploeter"
)

// Every ratio helper in this package divides by a population count that
// a degraded sweep (full fault injection, an empty subset, a dark site)
// can legitimately drive to zero. These tables pin the guarded behavior:
// 0, never NaN or ±Inf, so reports render cleanly no matter how thin
// the map got.

func TestMapCoverageRate(t *testing.T) {
	cases := []struct {
		name string
		m    MapCoverage
		want float64
	}{
		{"empty sweep", MapCoverage{Targets: 0, Mapped: 0}, 0},
		{"zero targets nonzero mapped", MapCoverage{Targets: 0, Mapped: 5}, 0},
		{"nothing answered", MapCoverage{Targets: 100, Mapped: 0}, 0},
		{"healthy", MapCoverage{Targets: 200, Mapped: 110}, 0.55},
		{"full", MapCoverage{Targets: 7, Mapped: 7}, 1},
	}
	for _, tc := range cases {
		if got := tc.m.Rate(); got != tc.want || math.IsNaN(got) {
			t.Errorf("%s: Rate() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestCountryRowShare(t *testing.T) {
	cases := []struct {
		name string
		row  CountryRow
		site int
		want float64
	}{
		{"empty country", CountryRow{Country: "XX"}, 0, 0},
		{"zero blocks with sites", CountryRow{Blocks: 0, BySite: []int{0, 0}}, 1, 0},
		{"site below range", CountryRow{Blocks: 4, BySite: []int{4}}, -1, 0},
		{"site above range", CountryRow{Blocks: 4, BySite: []int{4}}, 3, 0},
		{"half", CountryRow{Blocks: 4, BySite: []int{2, 2}}, 0, 0.5},
		{"all one site", CountryRow{Blocks: 3, BySite: []int{0, 3}}, 1, 1},
	}
	for _, tc := range cases {
		if got := tc.row.Share(tc.site); got != tc.want || math.IsNaN(got) {
			t.Errorf("%s: Share(%d) = %v, want %v", tc.name, tc.site, got, tc.want)
		}
	}
}

func TestCountryRowDominantSiteEmpty(t *testing.T) {
	if got := (CountryRow{}).DominantSite(); got != -1 {
		t.Errorf("empty row DominantSite() = %d, want -1", got)
	}
	if got := (CountryRow{Blocks: 2, BySite: []int{0, 0, 2}}).DominantSite(); got != 2 {
		t.Errorf("DominantSite() = %d, want 2", got)
	}
}

func TestDivisionStatsSplitFrac(t *testing.T) {
	cases := []struct {
		name string
		d    DivisionStats
		want float64
	}{
		{"no mapped ASes", DivisionStats{}, 0},
		{"zero mapped nonzero split", DivisionStats{MappedASes: 0, SplitASes: 3}, 0},
		{"quarter split", DivisionStats{MappedASes: 8, SplitASes: 2}, 0.25},
	}
	for _, tc := range cases {
		if got := tc.d.SplitFrac(); got != tc.want || math.IsNaN(got) {
			t.Errorf("%s: SplitFrac() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestPrefixLenRowFracMultiSite(t *testing.T) {
	cases := []struct {
		name string
		r    PrefixLenRow
		want float64
	}{
		{"no prefixes", PrefixLenRow{Bits: 16}, 0},
		{"zero prefixes nonempty hist", PrefixLenRow{Bits: 20, SitesHist: []int{0, 2}}, 0},
		{"all single-site", PrefixLenRow{Bits: 24, Prefixes: 5, SitesHist: []int{5}}, 0},
		{"mixed", PrefixLenRow{Bits: 16, Prefixes: 4, SitesHist: []int{1, 2, 1}}, 0.75},
	}
	for _, tc := range cases {
		if got := tc.r.FracMultiSite(); got != tc.want || math.IsNaN(got) {
			t.Errorf("%s: FracMultiSite() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestPercentileEmptyAndEdges(t *testing.T) {
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(nil) = %v, want 0", got)
	}
	if got := percentile([]float64{}, 0.95); got != 0 {
		t.Errorf("percentile(empty) = %v, want 0", got)
	}
	if got := percentile([]float64{3}, 0.5); got != 3 {
		t.Errorf("percentile(single, 0.5) = %v, want 3", got)
	}
	if got := percentile([]float64{1, 3}, 1); got != 3 {
		t.Errorf("percentile(_, 1) = %v, want 3", got)
	}
	if got := percentile([]float64{1, 3}, 0.5); got != 2 {
		t.Errorf("percentile(_, 0.5) = %v, want 2", got)
	}
}

// TestCompareCoverageEmptyInputs drives the full Table 4 assembly with
// nothing responding on either side: every derived field, the headline
// Ratio included, must come out zero rather than NaN/Inf.
func TestCompareCoverageEmptyInputs(t *testing.T) {
	ar := &atlas.Result{Blocks: ipv4.NewBlockSet(0)}
	c := CompareCoverage(ar, verfploeter.NewCatchment(2), &hitlist.Hitlist{}, &geo.DB{})
	if c.Ratio != 0 || math.IsNaN(c.Ratio) || math.IsInf(c.Ratio, 0) {
		t.Errorf("Ratio = %v, want 0", c.Ratio)
	}
	if c.Overlap != 0 || c.AtlasUnique != 0 || c.VerfUnique != 0 {
		t.Errorf("cross coverage = %d/%d/%d, want all zero", c.Overlap, c.AtlasUnique, c.VerfUnique)
	}
}

func TestTopFlipShareEmpty(t *testing.T) {
	if got := TopFlipShare(nil, 5); got != 0 {
		t.Errorf("TopFlipShare(nil) = %v, want 0", got)
	}
	rows := []FlipAS{{Frac: 0.5}, {Frac: 0.3}, {Frac: 0.2}}
	if got := TopFlipShare(rows, 2); got != 0.8 {
		t.Errorf("TopFlipShare(top 2) = %v, want 0.8", got)
	}
	if got := TopFlipShare(rows, 10); got != 1.0 {
		t.Errorf("TopFlipShare(n beyond rows) = %v, want 1", got)
	}
}
