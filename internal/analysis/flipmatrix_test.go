package analysis

import (
	"strings"
	"testing"

	"verfploeter/internal/dataset"
	"verfploeter/internal/ipv4"
	"verfploeter/internal/verfploeter"
)

func TestFlipMatrix(t *testing.T) {
	prev := verfploeter.NewCatchment(2)
	cur := verfploeter.NewCatchment(2)
	// 1.2.3.0/24 stays at site 0; 1.2.4.0/24 flips 0->1; 1.2.5.0/24 goes
	// non-responsive from site 1; 1.2.6.0/24 appears at site 1.
	b := func(s string) ipv4.Block {
		blk, err := ipv4.ParseBlock(s)
		if err != nil {
			t.Fatal(err)
		}
		return blk
	}
	prev.Set(b("1.2.3.0/24"), 0)
	cur.Set(b("1.2.3.0/24"), 0)
	prev.Set(b("1.2.4.0/24"), 0)
	cur.Set(b("1.2.4.0/24"), 1)
	prev.Set(b("1.2.5.0/24"), 1)
	cur.Set(b("1.2.6.0/24"), 1)

	m, err := NewFlipMatrix(prev, cur)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Cell[0][0]; got != 1 {
		t.Errorf("stable cell = %d, want 1", got)
	}
	if got := m.Cell[0][1]; got != 1 {
		t.Errorf("flip cell = %d, want 1", got)
	}
	if got := m.Cell[1][2]; got != 1 {
		t.Errorf("to-NR cell = %d, want 1", got)
	}
	if got := m.Cell[2][1]; got != 1 {
		t.Errorf("from-NR cell = %d, want 1", got)
	}
	if m.Flipped() != 1 || m.Stable() != 1 || m.ToNR() != 1 || m.FromNR() != 1 {
		t.Errorf("summary = flipped %d stable %d toNR %d fromNR %d, want all 1",
			m.Flipped(), m.Stable(), m.ToNR(), m.FromNR())
	}

	// The summary must agree with verfploeter.Diff.
	d := verfploeter.Diff(prev, cur)
	if d.Flipped != m.Flipped() || d.Stable != m.Stable() || d.ToNR != m.ToNR() || d.FromNR != m.FromNR() {
		t.Errorf("matrix disagrees with Diff: %+v vs matrix %d/%d/%d/%d",
			d, m.Flipped(), m.Stable(), m.ToNR(), m.FromNR())
	}

	out := m.Render([]string{"LAX", "MIA"})
	for _, want := range []string{"LAX", "MIA", "NR"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered matrix missing label %q:\n%s", want, out)
		}
	}
}

func TestFlipMatrixSiteMismatch(t *testing.T) {
	if _, err := NewFlipMatrix(verfploeter.NewCatchment(2), verfploeter.NewCatchment(3)); err == nil {
		t.Fatal("no error for mismatched site counts")
	}
}

func TestSeriesFlipMatrices(t *testing.T) {
	b := func(s string) ipv4.Block {
		blk, err := ipv4.ParseBlock(s)
		if err != nil {
			t.Fatal(err)
		}
		return blk
	}
	base := verfploeter.NewCatchment(2)
	base.Set(b("1.2.3.0/24"), 0)
	base.Set(b("1.2.4.0/24"), 0)
	s := &dataset.Series{
		Baseline: base,
		Epochs: []dataset.SeriesEpoch{
			{Epoch: 1, Changed: []dataset.Delta{{Block: b("1.2.4.0/24"), Site: 1}}},
			{Epoch: 2, Removed: []ipv4.Block{b("1.2.3.0/24")}},
		},
	}
	ms, err := SeriesFlipMatrices(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("got %d matrices, want 2", len(ms))
	}
	if ms[0].Flipped() != 1 || ms[0].Stable() != 1 {
		t.Errorf("epoch 0->1: flipped %d stable %d, want 1/1", ms[0].Flipped(), ms[0].Stable())
	}
	if ms[1].ToNR() != 1 || ms[1].Flipped() != 0 {
		t.Errorf("epoch 1->2: toNR %d flipped %d, want 1/0", ms[1].ToNR(), ms[1].Flipped())
	}
}
