package analysis

import (
	"sort"

	"verfploeter/internal/ipv4"
	"verfploeter/internal/topology"
	"verfploeter/internal/verfploeter"
)

// §6.3: is a single catchment measurement representative over time? The
// paper measures Tangled every 15 minutes for a day (96 rounds) and finds
// the catchment very stable — ~95% of VPs keep their site, ~2.4% churn in
// and out of responsiveness, and only ~0.1% flip sites, with half the
// flips inside one AS (Table 7).

// StabilityRound is one Figure 9 data point: the transition counts
// between consecutive rounds.
type StabilityRound struct {
	Round int // index of the *current* round (1-based vs its predecessor)
	Diff  verfploeter.DiffStats
}

// Stability classifies every consecutive pair of rounds.
func Stability(rounds []*verfploeter.Catchment) []StabilityRound {
	if len(rounds) < 2 {
		return nil
	}
	out := make([]StabilityRound, 0, len(rounds)-1)
	for i := 1; i < len(rounds); i++ {
		out = append(out, StabilityRound{Round: i, Diff: verfploeter.Diff(rounds[i-1], rounds[i])})
	}
	return out
}

// MedianStability returns the medians of the four Figure 9 series.
func MedianStability(series []StabilityRound) verfploeter.DiffStats {
	if len(series) == 0 {
		return verfploeter.DiffStats{}
	}
	pick := func(f func(verfploeter.DiffStats) int) int {
		v := make([]int, len(series))
		for i, s := range series {
			v[i] = f(s.Diff)
		}
		sort.Ints(v)
		return v[len(v)/2]
	}
	return verfploeter.DiffStats{
		Stable:  pick(func(d verfploeter.DiffStats) int { return d.Stable }),
		Flipped: pick(func(d verfploeter.DiffStats) int { return d.Flipped }),
		ToNR:    pick(func(d verfploeter.DiffStats) int { return d.ToNR }),
		FromNR:  pick(func(d verfploeter.DiffStats) int { return d.FromNR }),
	}
}

// UnstableBlocks returns every block that changed site at least once
// across the rounds — the set §6.2 removes before counting AS divisions.
func UnstableBlocks(rounds []*verfploeter.Catchment) *ipv4.BlockSet {
	unstable := ipv4.NewBlockSet(0)
	for i := 1; i < len(rounds); i++ {
		prev, cur := rounds[i-1], rounds[i]
		cur.Range(func(b ipv4.Block, site int) bool {
			if ps, ok := prev.SiteOf(b); ok && ps != site {
				unstable.Add(b)
			}
			return true
		})
	}
	return unstable
}

// FlipAS is one Table 7 row: an AS and its share of all catchment flips.
type FlipAS struct {
	ASN    uint32
	Name   string
	Blocks int // distinct blocks of this AS that flipped
	Flips  int // total flip events
	Frac   float64
}

// FlipAttribution tallies flips per origin AS across all rounds,
// descending by flip count (Table 7).
func FlipAttribution(top *topology.Topology, rounds []*verfploeter.Catchment) []FlipAS {
	flips := map[int32]int{}
	blocks := map[int32]*ipv4.BlockSet{}
	total := 0
	for i := 1; i < len(rounds); i++ {
		prev, cur := rounds[i-1], rounds[i]
		cur.Range(func(b ipv4.Block, site int) bool {
			ps, ok := prev.SiteOf(b)
			if !ok || ps == site {
				return true
			}
			bi := top.BlockIndex(b)
			if bi < 0 {
				return true
			}
			asIdx := top.Blocks[bi].ASIdx
			flips[asIdx]++
			total++
			bs := blocks[asIdx]
			if bs == nil {
				bs = ipv4.NewBlockSet(0)
				blocks[asIdx] = bs
			}
			bs.Add(b)
			return true
		})
	}
	out := make([]FlipAS, 0, len(flips))
	for asIdx, n := range flips {
		a := &top.ASes[asIdx]
		frac := 0.0
		if total > 0 {
			frac = float64(n) / float64(total)
		}
		out = append(out, FlipAS{
			ASN: a.ASN, Name: a.Name,
			Blocks: blocks[asIdx].Len(), Flips: n, Frac: frac,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flips != out[j].Flips {
			return out[i].Flips > out[j].Flips
		}
		return out[i].ASN < out[j].ASN
	})
	return out
}

// TopFlipShare returns the combined flip share of the top n ASes (the
// paper: 63% of flips sit in 5 ASes, 51% in one).
func TopFlipShare(rows []FlipAS, n int) float64 {
	share := 0.0
	for i, r := range rows {
		if i >= n {
			break
		}
		share += r.Frac
	}
	return share
}

// Consensus folds a multi-round campaign into one robust catchment: each
// block maps to the site it reached most often, ignoring blocks seen in
// fewer than minRounds rounds. Operators using repeated measurements
// (the paper's 96-round campaign) want a map that transient flips and
// responsiveness blinks cannot distort.
func Consensus(rounds []*verfploeter.Catchment, minRounds int) *verfploeter.Catchment {
	if len(rounds) == 0 {
		return verfploeter.NewCatchment(1)
	}
	if minRounds < 1 {
		minRounds = 1
	}
	nSite := rounds[0].NSite
	votes := map[ipv4.Block][]int{}
	for _, r := range rounds {
		r.Range(func(b ipv4.Block, site int) bool {
			v := votes[b]
			if v == nil {
				v = make([]int, nSite)
				votes[b] = v
			}
			v[site]++
			return true
		})
	}
	out := verfploeter.NewCatchment(nSite)
	for b, v := range votes {
		best, bestN, total := 0, 0, 0
		for s, n := range v {
			total += n
			if n > bestN {
				best, bestN = s, n
			}
		}
		if total >= minRounds {
			out.Set(b, best)
		}
	}
	return out
}
