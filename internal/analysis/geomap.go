package analysis

import (
	"fmt"
	"io"
	"sort"

	"verfploeter/internal/atlas"
	"verfploeter/internal/geo"
	"verfploeter/internal/ipv4"
	"verfploeter/internal/loadmodel"
	"verfploeter/internal/querylog"
	"verfploeter/internal/verfploeter"
)

// Figures 2-4 are world maps of two-degree bins, each a pie of per-site
// weight. A terminal cannot draw pies, so RenderGrid draws the dominant
// site per cell as a letter and the tables below carry the exact counts.

// CatchmentGrid bins a Verfploeter catchment by block location, weight 1
// per mapped block (Figures 2b, 3b).
func CatchmentGrid(catch *verfploeter.Catchment, db *geo.DB) *geo.Grid {
	g := geo.NewGrid(catch.NSite)
	catch.Range(func(b ipv4.Block, site int) bool {
		if loc, ok := db.Lookup(b); ok {
			g.Add(loc.Lat, loc.Lon, site, 1)
		}
		return true
	})
	return g
}

// AtlasGrid bins an Atlas measurement by VP location, weight 1 per
// responding VP (Figures 2a, 3a). nSite sizes the unknown slot.
func AtlasGrid(res *atlas.Result, nSite int) *geo.Grid {
	g := geo.NewGrid(nSite)
	for _, pr := range res.PerVP {
		if pr.Site < 0 {
			continue
		}
		g.Add(pr.VP.Lat, pr.VP.Lon, pr.Site, 1)
	}
	return g
}

// LoadGrid bins query load by block location; unmapped traffic-sending
// blocks land in the unknown slot (Figure 4a's red slices).
func LoadGrid(catch *verfploeter.Catchment, log *querylog.Log, db *geo.DB, w loadmodel.Weight) *geo.Grid {
	g := geo.NewGrid(catch.NSite)
	for i := range log.Blocks {
		bl := &log.Blocks[i]
		loc, ok := db.Lookup(bl.Block)
		if !ok {
			continue
		}
		slot := catch.NSite
		if site, mapped := catch.SiteOf(bl.Block); mapped {
			slot = site
		}
		weight := bl.QueriesPerDay
		if w == loadmodel.ByGoodReplies {
			weight = bl.GoodQPD()
		}
		g.Add(loc.Lat, loc.Lon, slot, weight/86400) // queries/second
	}
	return g
}

// RenderGrid draws an ASCII world map (2-degree bins, 4 degrees per
// character cell) with each cell showing the dominant site's letter, plus
// a continent rollup table. siteLetters supplies one letter per site;
// '?' marks cells dominated by the unknown slot.
func RenderGrid(w io.Writer, g *geo.Grid, siteLetters []rune) error {
	cells := map[geo.Bin]*geo.GridCell{}
	for _, c := range g.Cells() {
		cells[c.Bin] = c
	}
	letter := func(c *geo.GridCell) rune {
		best, bestW := -1, 0.0
		for s, wgt := range c.BySite {
			if wgt > bestW {
				best, bestW = s, wgt
			}
		}
		if best < 0 {
			return '.'
		}
		if best >= len(siteLetters) {
			return '?'
		}
		return siteLetters[best]
	}
	// Latitude 72..-56 covers the populated world; 4° per row/col.
	for latTop := 72; latTop > -56; latTop -= 4 {
		row := make([]rune, 0, 90)
		for lon := -180; lon < 180; lon += 4 {
			// Merge the four 2° bins of this character cell.
			var merged *geo.GridCell
			for dla := 0; dla < 2; dla++ {
				for dlo := 0; dlo < 2; dlo++ {
					b := geo.BinOf(float64(latTop)-2*float64(dla)-1, float64(lon)+2*float64(dlo)+1)
					if c := cells[b]; c != nil {
						if merged == nil {
							merged = &geo.GridCell{BySite: make([]float64, len(c.BySite))}
						}
						for s, wgt := range c.BySite {
							merged.BySite[s] += wgt
							merged.Total += wgt
						}
					}
				}
			}
			if merged == nil {
				row = append(row, '.')
			} else {
				row = append(row, letter(merged))
			}
		}
		if _, err := fmt.Fprintln(w, string(row)); err != nil {
			return err
		}
	}

	// Continent rollup.
	totals := g.ContinentTotals()
	conts := make([]string, 0, len(totals))
	for c := range totals {
		conts = append(conts, c)
	}
	sort.Strings(conts)
	if _, err := fmt.Fprintf(w, "\n%-6s", "cont"); err != nil {
		return err
	}
	for s := 0; s < len(siteLetters); s++ {
		fmt.Fprintf(w, "%12c", siteLetters[s])
	}
	fmt.Fprintf(w, "%12s\n", "unknown")
	for _, c := range conts {
		row := totals[c]
		fmt.Fprintf(w, "%-6s", c)
		for s := 0; s <= len(siteLetters) && s < len(row); s++ {
			fmt.Fprintf(w, "%12.1f", row[s])
		}
		fmt.Fprintln(w)
	}
	return nil
}
