package loadgen_test

import (
	"fmt"
	"sort"

	"verfploeter/internal/loadgen"
	"verfploeter/internal/querylog"
	"verfploeter/internal/scenario"
	"verfploeter/internal/topology"
)

// ExampleParseAttackMix shows the attack-mix syntax the -attack CLI
// flag and the experiment suite share: shape, volume (absolute, or a
// multiple of normal traffic with an "x" suffix), origin-AS count, and
// seed.
func ExampleParseAttackMix() {
	mix, err := loadgen.ParseAttackMix("shape=concentrated,volume=5x,ases=8,seed=3")
	if err != nil {
		panic(err)
	}
	fmt.Println(mix)
	fmt.Printf("at 2.0G normal queries/day the attack is %.0fG queries/day\n", mix.QPD(2e9)/1e9)
	// Output:
	// shape=concentrated,volume=5x,ases=8,seed=3
	// at 2.0G normal queries/day the attack is 10G queries/day
}

// ExampleAttackMix_Synthesize contrasts the two attack shapes on the
// same topology by how much of the address space carries half the
// attack volume: a spoofed flood spreads it near-uniformly, a
// concentrated herd piles it into a handful of blocks.
func ExampleAttackMix_Synthesize() {
	s := scenario.BRoot(topology.SizeTiny, 7)
	spoofed := loadgen.AttackMix{Shape: loadgen.AttackSpoofed, Volume: 1e9, Seed: 4}.Synthesize(s.Top, 0)
	herd := loadgen.AttackMix{Shape: loadgen.AttackConcentrated, Volume: 1e9, Sources: 12, Seed: 4}.Synthesize(s.Top, 0)

	blocksForHalf := func(l *querylog.Log) int {
		rates := make([]float64, len(l.Blocks))
		for i := range l.Blocks {
			rates[i] = l.Blocks[i].QueriesPerDay
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(rates)))
		sum := 0.0
		for i, r := range rates {
			if sum += r; sum >= l.TotalQPD()/2 {
				return i + 1
			}
		}
		return len(rates)
	}
	fmt.Printf("topology blocks: %d\n", len(s.Top.Blocks))
	fmt.Printf("spoofed: half the volume from %d blocks\n", blocksForHalf(spoofed))
	fmt.Printf("concentrated: half the volume from %d blocks\n", blocksForHalf(herd))
	// Output:
	// topology blocks: 3974
	// spoofed: half the volume from 1223 blocks
	// concentrated: half the volume from 26 blocks
}
