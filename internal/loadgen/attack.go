package loadgen

// Attack-traffic model: synthetic DDoS source mixes with per-AS
// intensity, the input side of the anycast-agility playbook ("Anycast
// Agility: Network Playbooks to Fight DDoS", Rizvi et al.). Two shapes
// cover the space the playbook must plan against:
//
//   - spoofed: randomized source addresses spread the attack almost
//     uniformly over the address space, uncorrelated with user density
//     or probe responsiveness — every catchment absorbs roughly its
//     address-share of the attack, so routing changes move attack load
//     in large, predictable slabs;
//   - concentrated: a booter or bot herd sends from a handful of origin
//     ASes with heavy-tailed per-AS intensity, so most of the attack
//     rides a few catchment entries and a single routing move can shift
//     (or fail to shift) the bulk of it at once.
//
// Both synthesize into an ordinary querylog.Log, so the playbook scores
// attack load with exactly the machinery that scores legitimate load
// (loadmodel.Predict), and Replay can push the same mix through the
// data plane packet by packet.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"verfploeter/internal/querylog"
	"verfploeter/internal/rng"
	"verfploeter/internal/topology"
)

// AttackShape selects an attack's source mix.
type AttackShape int

const (
	// AttackSpoofed models randomized-source floods: near-uniform
	// per-block intensity across most of the address space.
	AttackSpoofed AttackShape = iota
	// AttackConcentrated models bot herds: a few origin ASes carry the
	// bulk of the volume with heavy-tailed per-AS intensity.
	AttackConcentrated
)

func (s AttackShape) String() string {
	switch s {
	case AttackSpoofed:
		return "spoofed"
	case AttackConcentrated:
		return "concentrated"
	}
	return fmt.Sprintf("shape(%d)", int(s))
}

// AttackMix describes one synthetic attack.
type AttackMix struct {
	Shape AttackShape
	// Volume is the attack's daily query volume. When Relative is true it
	// is a multiple of the defended service's normal daily volume (the
	// "5x" in CLI specs), resolved by Synthesize's normalQPD argument;
	// otherwise it is an absolute queries-per-day figure.
	Volume   float64
	Relative bool
	// Sources is how many origin ASes carry the concentrated shape's
	// volume (default 12); ignored for spoofed.
	Sources int
	// Seed derives the mix's deterministic randomness. The same mix over
	// the same topology always synthesizes the same log.
	Seed uint64
}

// spoofedCoverage is the fraction of topology blocks a spoofed flood
// appears from: high, because randomized sources land everywhere.
const spoofedCoverage = 0.8

// concentratedBackground is the fraction of a concentrated attack's
// volume arriving from outside the chosen origin ASes (reflectors,
// stragglers); the rest rides the per-AS intensities.
const concentratedBackground = 0.1

// ParseAttackMix parses the CLI attack-mix syntax: a comma-separated
// key=value list with keys shape (spoofed | concentrated), volume (a
// multiple of normal daily volume with an "x" suffix, e.g. "5x", or an
// absolute queries/day figure), ases (origin-AS count for concentrated),
// and seed. An empty spec is the default mix: shape=spoofed,volume=5x.
func ParseAttackMix(spec string) (AttackMix, error) {
	m := AttackMix{Shape: AttackSpoofed, Volume: 5, Relative: true, Sources: 12}
	if strings.TrimSpace(spec) == "" {
		return m, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return m, fmt.Errorf("loadgen: attack mix %q: want key=value, got %q", spec, kv)
		}
		val = strings.TrimSpace(val)
		switch strings.TrimSpace(key) {
		case "shape":
			switch val {
			case "spoofed":
				m.Shape = AttackSpoofed
			case "concentrated":
				m.Shape = AttackConcentrated
			default:
				return m, fmt.Errorf("loadgen: unknown attack shape %q (spoofed, concentrated)", val)
			}
		case "volume":
			rel := strings.HasSuffix(val, "x")
			v, err := strconv.ParseFloat(strings.TrimSuffix(val, "x"), 64)
			if err != nil || v <= 0 {
				return m, fmt.Errorf("loadgen: bad attack volume %q", val)
			}
			m.Volume, m.Relative = v, rel
		case "ases":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return m, fmt.Errorf("loadgen: bad attack ases %q", val)
			}
			m.Sources = n
		case "seed":
			s, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return m, fmt.Errorf("loadgen: bad attack seed %q", val)
			}
			m.Seed = s
		default:
			return m, fmt.Errorf("loadgen: unknown attack-mix key %q (shape, volume, ases, seed)", key)
		}
	}
	return m, nil
}

// String renders the mix back in ParseAttackMix syntax.
func (m AttackMix) String() string {
	vol := fmt.Sprintf("%g", m.Volume)
	if m.Relative {
		vol += "x"
	}
	s := fmt.Sprintf("shape=%s,volume=%s", m.Shape, vol)
	if m.Shape == AttackConcentrated {
		s += fmt.Sprintf(",ases=%d", m.Sources)
	}
	if m.Seed != 0 {
		s += fmt.Sprintf(",seed=%d", m.Seed)
	}
	return s
}

// QPD resolves the mix's absolute daily volume against the defended
// service's normal volume.
func (m AttackMix) QPD(normalQPD float64) float64 {
	if m.Relative {
		return m.Volume * normalQPD
	}
	return m.Volume
}

// Synthesize generates the attack's day of traffic over the topology as
// a query log (GoodFrac near zero, no diurnal cycle — floods do not
// sleep). normalQPD is the defended service's normal daily volume, used
// to resolve a Relative mix; the result is deterministic in (topology,
// mix).
func (m AttackMix) Synthesize(top *topology.Topology, normalQPD float64) *querylog.Log {
	total := m.QPD(normalQPD)
	if total <= 0 {
		panic("loadgen: attack mix resolves to non-positive volume")
	}
	switch m.Shape {
	case AttackConcentrated:
		return m.synthesizeConcentrated(top, total)
	default:
		return m.synthesizeSpoofed(top, total)
	}
}

// synthesizeSpoofed spreads the volume near-uniformly: every block is a
// candidate source regardless of user density or responsiveness, with
// only a mild jitter so the log is not perfectly flat.
func (m AttackMix) synthesizeSpoofed(top *topology.Topology, total float64) *querylog.Log {
	src := rng.New(m.Seed).Derive("attack-spoofed")
	blocks := make([]querylog.BlockLoad, 0, int(float64(len(top.Blocks))*spoofedCoverage)+1)
	var raw float64
	for i := range top.Blocks {
		if !src.Bool(spoofedCoverage) {
			continue
		}
		rate := 0.5 + src.Float64() // uniform-ish; jitter only
		blocks = append(blocks, querylog.BlockLoad{
			Block:         top.Blocks[i].Block,
			QueriesPerDay: rate,
			GoodFrac:      0.01,
		})
		raw += rate
	}
	return scaleAttack("attack-spoofed", blocks, raw, total)
}

// synthesizeConcentrated picks Sources origin ASes (weighted by block
// count, so herds live where addresses are) and assigns each a
// heavy-tailed intensity; the AS's blocks split its share evenly, plus a
// thin spoofed background.
func (m AttackMix) synthesizeConcentrated(top *topology.Topology, total float64) *querylog.Log {
	src := rng.New(m.Seed).Derive("attack-concentrated")

	// Per-AS block lists, once.
	perAS := make([][]int32, len(top.ASes))
	for i := range top.Blocks {
		as := top.Blocks[i].ASIdx
		perAS[as] = append(perAS[as], int32(i))
	}

	// Rank ASes by a deterministic hash weighted toward block-rich ASes;
	// take the top Sources as origins with Pareto intensities.
	type origin struct {
		as        int32
		rank      uint64
		intensity float64
	}
	cands := make([]origin, 0, len(perAS))
	for as := range perAS {
		if len(perAS[as]) == 0 {
			continue
		}
		cands = append(cands, origin{as: int32(as)})
	}
	// Deterministic per-AS rank: hash of (seed, as) scaled down by block
	// count so bigger ASes are likelier origins, as real herds are.
	for i := range cands {
		r := rng.New(m.Seed).Derive(fmt.Sprintf("origin-%d", cands[i].as))
		w := float64(len(perAS[cands[i].as]))
		cands[i].rank = uint64(float64(r.Uint32()) / (w + 1))
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].rank != cands[j].rank {
			return cands[i].rank < cands[j].rank
		}
		return cands[i].as < cands[j].as
	})
	k := m.Sources
	if k < 1 {
		k = 12
	}
	if k > len(cands) {
		k = len(cands)
	}
	origins := cands[:k]
	var intenSum float64
	for i := range origins {
		origins[i].intensity = src.Pareto(1.2, 1) // heavy tail: one herd dominates
		intenSum += origins[i].intensity
	}

	blocks := make([]querylog.BlockLoad, 0, 1024)
	bulk := total * (1 - concentratedBackground)
	for _, o := range origins {
		share := bulk * o.intensity / intenSum
		members := perAS[o.as]
		// Within the origin AS the split is heavy-tailed as well: a herd
		// is individual compromised hosts, and a few blocks hold most of
		// them.
		r := src.Derive(fmt.Sprintf("as-%d", o.as))
		w := make([]float64, len(members))
		var wSum float64
		for i := range w {
			w[i] = r.Pareto(0.9, 1)
			wSum += w[i]
		}
		for i, bi := range members {
			blocks = append(blocks, querylog.BlockLoad{
				Block:         top.Blocks[bi].Block,
				QueriesPerDay: share * w[i] / wSum,
				GoodFrac:      0.01,
			})
		}
	}
	// Spoofed background from everywhere else.
	bg := synthBackground(top, src, total*concentratedBackground)
	blocks = append(blocks, bg...)
	return querylog.FromBlocks("attack-concentrated", mergeBlocks(blocks))
}

// synthBackground spreads bgTotal thinly over a small random block
// sample.
func synthBackground(top *topology.Topology, src *rng.Source, bgTotal float64) []querylog.BlockLoad {
	out := make([]querylog.BlockLoad, 0, len(top.Blocks)/20+1)
	var raw float64
	for i := range top.Blocks {
		if !src.Bool(0.05) {
			continue
		}
		rate := 0.5 + src.Float64()
		out = append(out, querylog.BlockLoad{
			Block:         top.Blocks[i].Block,
			QueriesPerDay: rate,
			GoodFrac:      0.01,
		})
		raw += rate
	}
	if raw > 0 {
		scale := bgTotal / raw
		for i := range out {
			out[i].QueriesPerDay *= scale
		}
	}
	return out
}

// mergeBlocks sums duplicate block entries (an origin-AS block can also
// be drawn for background).
func mergeBlocks(in []querylog.BlockLoad) []querylog.BlockLoad {
	sort.Slice(in, func(i, j int) bool { return in[i].Block < in[j].Block })
	out := in[:0]
	for _, bl := range in {
		if n := len(out); n > 0 && out[n-1].Block == bl.Block {
			out[n-1].QueriesPerDay += bl.QueriesPerDay
			continue
		}
		out = append(out, bl)
	}
	return out
}

// scaleAttack normalizes raw per-block rates to the target volume and
// wraps them in a Log.
func scaleAttack(name string, blocks []querylog.BlockLoad, raw, total float64) *querylog.Log {
	if raw > 0 {
		scale := total / raw
		for i := range blocks {
			blocks[i].QueriesPerDay *= scale
		}
	}
	return querylog.FromBlocks(name, blocks)
}
