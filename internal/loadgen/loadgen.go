// Package loadgen replays query-log traffic as real DNS packets through
// the simulated data plane, producing the per-site traffic counters an
// operator reads off their servers. The paper's "actual load" lines
// (Table 6's 81.4%) come from exactly such per-site logs; replaying
// queries end-to-end — marshal, route by the live assignment, answer at
// the site's DNS front end, parse the response — grounds the library's
// computed Actual() in measured packets.
//
// A root server's day is ~2.2G queries (Table 2); replaying them all is
// pointless, so Replay importance-samples query events proportionally to
// each block's daily volume and scales the counters back up.
package loadgen

import (
	"errors"
	"fmt"

	"verfploeter/internal/dataplane"
	"verfploeter/internal/dnswire"
	"verfploeter/internal/querylog"
	"verfploeter/internal/rng"
)

// Counters are the per-site traffic logs the replay produces, scaled to
// the log's full daily volume.
type Counters struct {
	NSite int
	// Queries[s] is estimated daily queries served by site s.
	Queries []float64
	// Good[s] and NX[s] split Queries by response type (§3.2's "good
	// replies" vs "all replies" distinction).
	Good []float64
	NX   []float64
	// Dropped is load from blocks with no route (should be zero on a
	// fully propagated Internet).
	Dropped float64
	// Sampled is how many query events were actually replayed.
	Sampled int
}

// Fraction returns site s's share of replayed queries.
func (c *Counters) Fraction(s int) float64 {
	total := 0.0
	for _, v := range c.Queries {
		total += v
	}
	if total == 0 {
		return 0
	}
	return c.Queries[s] / total
}

// ErrNoSamples means the sample budget or the log was empty.
var ErrNoSamples = errors.New("loadgen: nothing to replay")

// Replay samples ~sampleBudget query events from the log (proportional
// to per-block volume), sends each as a real DNS query through the data
// plane, and returns scaled per-site counters.
func Replay(net *dataplane.Net, log *querylog.Log, nSite int, sampleBudget int, seed uint64) (*Counters, error) {
	if sampleBudget <= 0 || log.Len() == 0 || log.TotalQPD() <= 0 {
		return nil, ErrNoSamples
	}
	src := rng.New(seed).Derive("loadgen")
	c := &Counters{
		NSite:   nSite,
		Queries: make([]float64, nSite),
		Good:    make([]float64, nSite),
		NX:      make([]float64, nSite),
	}
	scalePerSample := log.TotalQPD() / float64(sampleBudget)

	for i := range log.Blocks {
		bl := &log.Blocks[i]
		// Expected samples for this block; floor plus a Bernoulli
		// remainder keeps the estimator unbiased.
		expect := float64(sampleBudget) * bl.QueriesPerDay / log.TotalQPD()
		n := int(expect)
		if src.Float64() < expect-float64(n) {
			n++
		}
		if n == 0 {
			continue
		}
		from := bl.Block.Addr(53) // the block's resolver
		for k := 0; k < n; k++ {
			name := "example.org"
			wantGood := src.Float64() < float64(bl.GoodFrac)
			if !wantGood {
				name = "nx.junk.invalid"
			}
			q, err := dnswire.NewQuery(uint16(c.Sampled), name, dnswire.TypeA, dnswire.ClassIN).Marshal()
			if err != nil {
				return nil, fmt.Errorf("loadgen: marshal query: %w", err)
			}
			respRaw, site, err := net.QueryAnycast(from, q)
			if err != nil || site < 0 || site >= nSite {
				c.Dropped += scalePerSample
				c.Sampled++
				continue
			}
			resp, err := dnswire.Unmarshal(respRaw)
			if err != nil {
				return nil, fmt.Errorf("loadgen: site %d returned garbage: %w", site, err)
			}
			c.Queries[site] += scalePerSample
			if resp.RCode == dnswire.RCodeNoError {
				c.Good[site] += scalePerSample
			} else {
				c.NX[site] += scalePerSample
			}
			c.Sampled++
		}
	}
	if c.Sampled == 0 {
		return nil, ErrNoSamples
	}
	return c, nil
}
