package loadgen

import (
	"errors"
	"math"
	"testing"

	"verfploeter/internal/loadmodel"
	"verfploeter/internal/querylog"
	"verfploeter/internal/scenario"
	"verfploeter/internal/topology"
)

func TestReplayMatchesComputedActual(t *testing.T) {
	s := scenario.BRoot(topology.SizeSmall, 1)
	log := s.RootLog()

	c, err := Replay(s.Net, log, 2, 20000, 99)
	if err != nil {
		t.Fatal(err)
	}
	if c.Sampled < 18000 || c.Sampled > 22000 {
		t.Errorf("sampled %d events for budget 20000", c.Sampled)
	}
	// Scaled totals reconstruct the log's daily volume.
	total := c.Queries[0] + c.Queries[1] + c.Dropped
	if math.Abs(total-log.TotalQPD())/log.TotalQPD() > 0.05 {
		t.Errorf("replayed volume %.3g vs log %.3g", total, log.TotalQPD())
	}
	if c.Dropped != 0 {
		t.Errorf("dropped %.0f on a fully routed Internet", c.Dropped)
	}

	// The measured split agrees with the direct computation within
	// sampling error.
	actual, _ := loadmodel.Actual(s.Net, log, loadmodel.ByQueries, 2)
	want := loadmodel.FractionOf(actual, 0)
	got := c.Fraction(0)
	if math.Abs(got-want) > 0.02 {
		t.Errorf("replayed LAX share %.3f vs computed %.3f", got, want)
	}

	// Good/NX split tracks the log's good fraction.
	good := (c.Good[0] + c.Good[1]) / (c.Queries[0] + c.Queries[1])
	var wantGood float64
	for i := range log.Blocks {
		wantGood += log.Blocks[i].GoodQPD()
	}
	wantGood /= log.TotalQPD()
	if math.Abs(good-wantGood) > 0.03 {
		t.Errorf("replayed good fraction %.3f vs log %.3f", good, wantGood)
	}
}

func TestReplayDeterministic(t *testing.T) {
	s := scenario.BRoot(topology.SizeTiny, 2)
	log := s.RootLog()
	a, err := Replay(s.Net, log, 2, 5000, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(s.Net, log, 2, 5000, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Queries {
		if a.Queries[i] != b.Queries[i] {
			t.Fatal("replay not deterministic")
		}
	}
}

func TestReplayValidation(t *testing.T) {
	s := scenario.BRoot(topology.SizeTiny, 3)
	log := s.RootLog()
	if _, err := Replay(s.Net, log, 2, 0, 1); !errors.Is(err, ErrNoSamples) {
		t.Errorf("zero budget: %v", err)
	}
	empty := &querylog.Log{Name: "empty"}
	if _, err := Replay(s.Net, empty, 2, 100, 1); !errors.Is(err, ErrNoSamples) {
		t.Errorf("empty log: %v", err)
	}
}

func TestReplayFollowsRoutingChanges(t *testing.T) {
	s := scenario.BRoot(topology.SizeSmall, 4)
	log := s.RootLog()
	before, err := Replay(s.Net, log, 2, 10000, 5)
	if err != nil {
		t.Fatal(err)
	}
	s.Reannounce([]int{1, 0}) // prepend LAX: load should flee to MIA
	after, err := Replay(s.Net, log, 2, 10000, 5)
	s.Reannounce(nil)
	if err != nil {
		t.Fatal(err)
	}
	if after.Fraction(0) >= before.Fraction(0) {
		t.Errorf("LAX share should drop after prepending: %.3f -> %.3f",
			before.Fraction(0), after.Fraction(0))
	}
}
