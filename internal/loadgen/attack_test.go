package loadgen

import (
	"math"
	"sort"
	"testing"

	"verfploeter/internal/querylog"
	"verfploeter/internal/scenario"
	"verfploeter/internal/topology"
)

func TestParseAttackMix(t *testing.T) {
	cases := []struct {
		spec string
		want AttackMix
	}{
		{"", AttackMix{Shape: AttackSpoofed, Volume: 5, Relative: true, Sources: 12}},
		{"shape=spoofed,volume=3x", AttackMix{Shape: AttackSpoofed, Volume: 3, Relative: true, Sources: 12}},
		{"shape=concentrated,volume=5x,ases=8,seed=3",
			AttackMix{Shape: AttackConcentrated, Volume: 5, Relative: true, Sources: 8, Seed: 3}},
		{"volume=1000000", AttackMix{Shape: AttackSpoofed, Volume: 1e6, Sources: 12}},
		{" shape = concentrated , volume = 2x ",
			AttackMix{Shape: AttackConcentrated, Volume: 2, Relative: true, Sources: 12}},
	}
	for _, c := range cases {
		got, err := ParseAttackMix(c.spec)
		if err != nil {
			t.Fatalf("ParseAttackMix(%q): %v", c.spec, err)
		}
		if got != c.want {
			t.Errorf("ParseAttackMix(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
	for _, bad := range []string{"shape=slow", "volume=0x", "volume=-1", "ases=0", "seed=x", "bogus=1", "noequals"} {
		if _, err := ParseAttackMix(bad); err == nil {
			t.Errorf("ParseAttackMix(%q): want error, got none", bad)
		}
	}
}

func TestAttackMixString(t *testing.T) {
	for _, spec := range []string{"shape=spoofed,volume=5x", "shape=concentrated,volume=2x,ases=8,seed=3"} {
		m, err := ParseAttackMix(spec)
		if err != nil {
			t.Fatal(err)
		}
		if m.String() != spec {
			t.Errorf("String() = %q, want round-trip of %q", m.String(), spec)
		}
	}
}

func TestAttackSynthesizeDeterministic(t *testing.T) {
	s := scenario.BRoot(topology.SizeTiny, 7)
	for _, spec := range []string{"shape=spoofed,volume=5x,seed=9", "shape=concentrated,volume=5x,ases=12,seed=9"} {
		m, err := ParseAttackMix(spec)
		if err != nil {
			t.Fatal(err)
		}
		a := m.Synthesize(s.Top, 1e9)
		b := m.Synthesize(s.Top, 1e9)
		if a.Len() != b.Len() {
			t.Fatalf("%s: %d vs %d blocks across runs", spec, a.Len(), b.Len())
		}
		for i := range a.Blocks {
			if a.Blocks[i] != b.Blocks[i] {
				t.Fatalf("%s: block %d differs across runs", spec, i)
			}
		}
		if math.Abs(a.TotalQPD()-5e9) > 1e-3*5e9 {
			t.Errorf("%s: total %.0f, want ~5e9", spec, a.TotalQPD())
		}
	}
}

// TestAttackShapeContrast pins the property that distinguishes the two
// shapes: a concentrated attack's volume piles into far fewer blocks
// than a spoofed flood's.
func TestAttackShapeContrast(t *testing.T) {
	s := scenario.BRoot(topology.SizeTiny, 7)
	sp := AttackMix{Shape: AttackSpoofed, Volume: 1e9, Seed: 4}.Synthesize(s.Top, 0)
	co := AttackMix{Shape: AttackConcentrated, Volume: 1e9, Sources: 12, Seed: 4}.Synthesize(s.Top, 0)

	if sp.Len() < len(s.Top.Blocks)/2 {
		t.Errorf("spoofed covers %d of %d blocks, want broad coverage", sp.Len(), len(s.Top.Blocks))
	}
	// Blocks needed to reach half the volume: few for concentrated, many
	// for spoofed.
	if nc, ns := blocksForHalf(co), blocksForHalf(sp); nc*4 > ns {
		t.Errorf("half-volume block counts: concentrated %d, spoofed %d — want strong concentration", nc, ns)
	}
}

func blocksForHalf(l *querylog.Log) int {
	rates := make([]float64, len(l.Blocks))
	for i := range l.Blocks {
		rates[i] = l.Blocks[i].QueriesPerDay
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(rates)))
	half := l.TotalQPD() / 2
	sum := 0.0
	for i, r := range rates {
		sum += r
		if sum >= half {
			return i + 1
		}
	}
	return len(rates)
}
