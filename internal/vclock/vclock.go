// Package vclock provides a deterministic virtual clock, an event
// scheduler, and a token-bucket rate limiter driven by it.
//
// The paper's mechanics are steeped in wall-clock time — probing at 6–10k
// packets/s for 10–20 minutes, discarding replies that arrive more than
// 15 minutes after a round starts, 96 rounds spaced 15 minutes apart over
// 24 hours. Running those on a real clock would make the test suite take a
// day; the virtual clock advances only when the simulation says so, keeping
// every run deterministic and instantaneous.
package vclock

import (
	"container/heap"
	"time"
)

// Clock is a virtual clock. The zero value starts at time zero; it is not
// safe for concurrent use — the simulator is single-threaded by design so
// that runs are reproducible.
type Clock struct {
	now    time.Duration
	events eventQueue
	seq    uint64
}

// New returns a Clock starting at time zero.
func New() *Clock { return &Clock{} }

// Now returns the current virtual time as an offset from the start.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves time forward by d, firing due events in timestamp order.
// Events scheduled by fired callbacks within the window also fire.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic("vclock: negative Advance")
	}
	target := c.now + d
	for len(c.events) > 0 && c.events[0].at <= target {
		ev := heap.Pop(&c.events).(*event)
		if ev.cancelled {
			continue
		}
		c.now = ev.at
		ev.fn()
	}
	c.now = target
}

// RunUntilIdle fires all pending events regardless of timestamp, advancing
// the clock to the last event's time.
func (c *Clock) RunUntilIdle() {
	for len(c.events) > 0 {
		ev := heap.Pop(&c.events).(*event)
		if ev.cancelled {
			continue
		}
		c.now = ev.at
		ev.fn()
	}
}

// Pending returns the number of scheduled, uncancelled events.
func (c *Clock) Pending() int {
	n := 0
	for _, ev := range c.events {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// Timer cancels a scheduled callback.
type Timer struct{ ev *event }

// Stop cancels the timer; it is safe to call multiple times. It reports
// whether the callback had not yet fired.
func (t *Timer) Stop() bool {
	if t.ev == nil || t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	return true
}

// After schedules fn to run d from now. d must be non-negative.
func (c *Clock) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		panic("vclock: negative After")
	}
	ev := &event{at: c.now + d, seq: c.seq, fn: func() {}}
	ev.fn = func() { ev.fired = true; fn() }
	c.seq++
	heap.Push(&c.events, ev)
	return &Timer{ev: ev}
}

type event struct {
	at        time.Duration
	seq       uint64 // FIFO among same-timestamp events
	fn        func()
	index     int
	cancelled bool
	fired     bool
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index, q[j].index = i, j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// RateLimiter is a token bucket tied to a Clock. Verfploeter probes at a
// configured packets-per-second rate "to spread traffic, limiting traffic
// to any given network" (§3.1).
type RateLimiter struct {
	clock      *Clock
	perToken   time.Duration
	burst      float64
	tokens     float64
	lastRefill time.Duration
}

// NewRateLimiter returns a limiter allowing rate events per second with
// the given burst size. rate must be positive; burst at least 1.
func NewRateLimiter(clock *Clock, rate float64, burst int) *RateLimiter {
	if rate <= 0 {
		panic("vclock: non-positive rate")
	}
	if burst < 1 {
		burst = 1
	}
	return &RateLimiter{
		clock:      clock,
		perToken:   time.Duration(float64(time.Second) / rate),
		burst:      float64(burst),
		tokens:     float64(burst),
		lastRefill: clock.Now(),
	}
}

func (r *RateLimiter) refill() {
	elapsed := r.clock.Now() - r.lastRefill
	r.lastRefill = r.clock.Now()
	r.tokens += float64(elapsed) / float64(r.perToken)
	if r.tokens > r.burst {
		r.tokens = r.burst
	}
}

// Allow consumes a token if one is available.
func (r *RateLimiter) Allow() bool {
	r.refill()
	if r.tokens >= 1 {
		r.tokens--
		return true
	}
	return false
}

// Delay returns how long from now until the next token is available
// (zero if one is available immediately). It does not consume a token.
func (r *RateLimiter) Delay() time.Duration {
	r.refill()
	if r.tokens >= 1 {
		return 0
	}
	need := 1 - r.tokens
	return time.Duration(need * float64(r.perToken))
}
