// Package vclock provides a deterministic virtual clock, an event
// scheduler, and a token-bucket rate limiter driven by it.
//
// The paper's mechanics are steeped in wall-clock time — probing at 6–10k
// packets/s for 10–20 minutes, discarding replies that arrive more than
// 15 minutes after a round starts, 96 rounds spaced 15 minutes apart over
// 24 hours. Running those on a real clock would make the test suite take a
// day; the virtual clock advances only when the simulation says so, keeping
// every run deterministic and instantaneous.
package vclock

import (
	"container/heap"
	"time"
)

// Clock is a virtual clock. The zero value starts at time zero; it is not
// safe for concurrent use — the simulator is single-threaded by design so
// that runs are reproducible.
type Clock struct {
	now    time.Duration
	events eventQueue
	seq    uint64
}

// New returns a Clock starting at time zero.
func New() *Clock { return &Clock{} }

// Now returns the current virtual time as an offset from the start.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves time forward by d, firing due events in timestamp order.
// Events scheduled by fired callbacks within the window also fire.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic("vclock: negative Advance")
	}
	target := c.now + d
	for len(c.events) > 0 && c.events[0].at <= target {
		ev := heap.Pop(&c.events).(*event)
		if ev.cancelled {
			continue
		}
		c.now = ev.at
		ev.fn()
	}
	c.now = target
}

// RunUntilIdle fires all pending events regardless of timestamp, advancing
// the clock to the last event's time.
func (c *Clock) RunUntilIdle() {
	for len(c.events) > 0 {
		ev := heap.Pop(&c.events).(*event)
		if ev.cancelled {
			continue
		}
		c.now = ev.at
		ev.fn()
	}
}

// Pending returns the number of scheduled, uncancelled events.
func (c *Clock) Pending() int {
	n := 0
	for _, ev := range c.events {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// Timer cancels a scheduled callback.
type Timer struct{ ev *event }

// Stop cancels the timer; it is safe to call multiple times. It reports
// whether the callback had not yet fired.
func (t *Timer) Stop() bool {
	if t.ev == nil || t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	return true
}

// After schedules fn to run d from now. d must be non-negative.
func (c *Clock) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		panic("vclock: negative After")
	}
	ev := &event{at: c.now + d, seq: c.seq, fn: func() {}}
	ev.fn = func() { ev.fired = true; fn() }
	c.seq++
	heap.Push(&c.events, ev)
	return &Timer{ev: ev}
}

type event struct {
	at        time.Duration
	seq       uint64 // FIFO among same-timestamp events
	fn        func()
	index     int
	cancelled bool
	fired     bool
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index, q[j].index = i, j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// RateLimiter is a token bucket tied to a Clock. Verfploeter probes at a
// configured packets-per-second rate "to spread traffic, limiting traffic
// to any given network" (§3.1).
//
// The implementation keeps an integer token ledger against a fixed
// anchor instead of a floating-point token balance: token k's
// availability is computed as one rounding of k·1e9/rate nanoseconds
// from the anchor, never by accumulating a truncated per-token interval.
// An accumulator drifts at rates that do not divide a second evenly
// (6000 q/s truncates 166666.67 ns to 166666, losing ~2/3 ns per probe —
// minutes of skew over a day-long campaign); the ledger's single
// rounding keeps any run of N delays within 1 ns of N·(1s/rate) total.
type RateLimiter struct {
	clock *Clock
	rate  float64
	burst int64
	// t0 anchors the schedule — the bucket was full at t0 — and used
	// counts tokens consumed since. The anchor rebases (t0 = now,
	// used = 0) only once the bucket has fully regenerated, which is the
	// classic clamp-at-burst: idle time beyond a full bucket is
	// forfeited, never banked.
	t0   time.Duration
	used int64
}

// NewRateLimiter returns a limiter allowing rate events per second with
// the given burst size. rate must be positive; burst at least 1.
func NewRateLimiter(clock *Clock, rate float64, burst int) *RateLimiter {
	if rate <= 0 {
		panic("vclock: non-positive rate")
	}
	if burst < 1 {
		burst = 1
	}
	return &RateLimiter{clock: clock, rate: rate, burst: int64(burst), t0: clock.Now()}
}

// tokenAt returns the instant the k-th token (1-based) regenerates:
// t0 + ceil(k·1e9/rate) ns, computed in one step so rounding error never
// accumulates across tokens. k <= 0 is available at the anchor itself.
func (r *RateLimiter) tokenAt(k int64) time.Duration {
	if k <= 0 {
		return r.t0
	}
	ns := float64(k) * float64(time.Second) / r.rate
	d := time.Duration(ns)
	if float64(d) < ns {
		d++
	}
	return r.t0 + d
}

// rebase forfeits excess regeneration once the bucket is full again.
// The comparison is strict: a drain that lands exactly on a token
// boundary keeps the original anchor, preserving the exact long-run
// schedule.
func (r *RateLimiter) rebase() {
	if now := r.clock.Now(); now > r.tokenAt(r.used) {
		r.t0, r.used = now, 0
	}
}

// Allow consumes a token if one is available.
func (r *RateLimiter) Allow() bool {
	r.rebase()
	// With used tokens consumed since a full bucket at t0, one is
	// available once the (used-burst+1)-th regeneration has happened.
	if r.clock.Now() >= r.tokenAt(r.used-r.burst+1) {
		r.used++
		return true
	}
	return false
}

// Delay returns how long from now until the next token is available
// (zero if one is available immediately). It does not consume a token.
func (r *RateLimiter) Delay() time.Duration {
	r.rebase()
	next := r.tokenAt(r.used - r.burst + 1)
	if now := r.clock.Now(); next > now {
		return next - now
	}
	return 0
}
