package vclock

import (
	"testing"
	"time"
)

func TestAdvanceFiresInOrder(t *testing.T) {
	c := New()
	var order []int
	c.After(3*time.Second, func() { order = append(order, 3) })
	c.After(1*time.Second, func() { order = append(order, 1) })
	c.After(2*time.Second, func() { order = append(order, 2) })
	c.Advance(10 * time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order = %v", order)
	}
	if c.Now() != 10*time.Second {
		t.Errorf("Now = %v, want 10s", c.Now())
	}
}

func TestAdvancePartial(t *testing.T) {
	c := New()
	fired := false
	c.After(5*time.Second, func() { fired = true })
	c.Advance(4 * time.Second)
	if fired {
		t.Fatal("event fired early")
	}
	c.Advance(1 * time.Second)
	if !fired {
		t.Fatal("event did not fire at its deadline")
	}
}

func TestSameTimestampFIFO(t *testing.T) {
	c := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.After(time.Second, func() { order = append(order, i) })
	}
	c.Advance(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events fired out of order: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	c := New()
	var log []time.Duration
	c.After(time.Second, func() {
		log = append(log, c.Now())
		c.After(time.Second, func() { log = append(log, c.Now()) })
	})
	c.Advance(5 * time.Second)
	if len(log) != 2 || log[0] != time.Second || log[1] != 2*time.Second {
		t.Fatalf("nested events: %v", log)
	}
}

func TestTimerStop(t *testing.T) {
	c := New()
	fired := false
	tm := c.After(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("first Stop should report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	c.Advance(2 * time.Second)
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Stop after firing reports false.
	tm2 := c.After(time.Second, func() {})
	c.Advance(time.Second)
	if tm2.Stop() {
		t.Fatal("Stop after fire should report false")
	}
}

func TestRunUntilIdle(t *testing.T) {
	c := New()
	n := 0
	c.After(time.Hour, func() { n++ })
	c.After(24*time.Hour, func() { n++ })
	c.RunUntilIdle()
	if n != 2 {
		t.Fatalf("fired %d, want 2", n)
	}
	if c.Now() != 24*time.Hour {
		t.Errorf("Now = %v, want 24h", c.Now())
	}
	if c.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", c.Pending())
	}
}

func TestNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative Advance should panic")
		}
	}()
	New().Advance(-time.Second)
}

func TestRateLimiterSteadyRate(t *testing.T) {
	c := New()
	rl := NewRateLimiter(c, 1000, 1) // 1k/s, burst 1
	sent := 0
	for c.Now() < time.Second {
		if rl.Allow() {
			sent++
		}
		c.Advance(rl.Delay() + time.Microsecond)
	}
	if sent < 990 || sent > 1010 {
		t.Errorf("sent %d in 1s at 1k/s, want ~1000", sent)
	}
}

func TestRateLimiterBurst(t *testing.T) {
	c := New()
	rl := NewRateLimiter(c, 10, 5)
	got := 0
	for rl.Allow() {
		got++
	}
	if got != 5 {
		t.Errorf("initial burst = %d, want 5", got)
	}
	if rl.Delay() <= 0 {
		t.Error("exhausted bucket should report positive delay")
	}
	c.Advance(100 * time.Millisecond) // one token at 10/s
	if !rl.Allow() {
		t.Error("token should be available after refill interval")
	}
	if rl.Allow() {
		t.Error("only one token should have refilled")
	}
}

func TestRateLimiterCapsAtBurst(t *testing.T) {
	c := New()
	rl := NewRateLimiter(c, 100, 3)
	c.Advance(time.Hour) // long idle must not over-accumulate
	got := 0
	for rl.Allow() {
		got++
	}
	if got != 3 {
		t.Errorf("tokens after idle = %d, want burst cap 3", got)
	}
}

func TestRateLimiterValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero rate should panic")
		}
	}()
	NewRateLimiter(New(), 0, 1)
}

// TestRateLimiterNoAccumulatedDrift is the regression test for the
// float-accumulation bug: at rates that do not divide a second evenly,
// the old token-bucket arithmetic (truncated per-token interval, tokens
// accumulated as float64) drifted by a fraction of a nanosecond per
// token. The contract now: N paced delays at rate R sum to within 1 ns
// of N·(1s/R), for any rate.
func TestRateLimiterNoAccumulatedDrift(t *testing.T) {
	const n = 10000
	for _, rate := range []float64{1000, 6000, 7321, 10000, 9999.5} {
		c := New()
		rl := NewRateLimiter(c, rate, 1)
		if !rl.Allow() {
			t.Fatalf("rate %g: initial token unavailable", rate)
		}
		start := c.Now()
		for i := 0; i < n; i++ {
			c.Advance(rl.Delay())
			if !rl.Allow() {
				t.Fatalf("rate %g: token %d unavailable after its delay", rate, i)
			}
		}
		got := float64(c.Now() - start)
		want := n * float64(time.Second) / rate
		if diff := got - want; diff < -1 || diff > 1 {
			t.Errorf("rate %g: %d delays total %.3f ns, want %.3f ± 1 ns (drift %.3f)",
				rate, n, got, want, diff)
		}
	}
}

// TestRateLimiterExactRateSchedule pins the wire-level schedule at the
// pipeline's default rate: with the bucket drained, tokens regenerate
// every exact 100 µs at 10k q/s — the property the byte-identity tests
// over the experiment suite rely on.
func TestRateLimiterExactRateSchedule(t *testing.T) {
	c := New()
	rl := NewRateLimiter(c, 10000, 2)
	for rl.Allow() {
	}
	for i := 0; i < 5; i++ {
		if d := rl.Delay(); d != 100*time.Microsecond {
			t.Fatalf("step %d: delay = %v, want 100µs", i, d)
		}
		c.Advance(100 * time.Microsecond)
		if !rl.Allow() {
			t.Fatalf("step %d: token not available on schedule", i)
		}
	}
}
