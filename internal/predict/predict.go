// Package predict is the probe-free catchment fast path (ROADMAP item
// 2, after "Inferring Catchment in Internet Routing", Sermpezis &
// Kotronis): given two converged routing states — the one a measured
// map was taken under and the one now deployed — it computes the
// expected per-block flip set directly from the control plane, with no
// probing, and attaches a per-block confidence score.
//
// # Exactness
//
// The dataplane serves a block from Assignment.SiteAt, a pure function
// of the block's (Primary, Secondary, FlipProb) triple and a frozen
// per-(block, round) coin. With the monitor's frozen RoundID and probe
// seed that makes a block's observation a pure function of its triple
// (plus its topology predecessor's, through the cross-block alias
// rule). Two consequences, which internal/monitor's fusion builds on:
//
//   - a block whose triple is unchanged and whose predecessor's triple
//     is unchanged provably re-observes byte-identically — skipping its
//     probe loses nothing;
//   - an observed flip implies a changed triple, so Flips is a superset
//     of every observable flip: recall against measured ground truth is
//     exactly 1 whenever Exact holds (precision is below 1 — a changed
//     triple whose frozen coin lands on an unchanged site shows no
//     data-plane flip; ext-predict measures the gap).
//
// Mispredictions therefore only arise from out-of-band perturbation
// (dataplane faults, direct assignment swaps, topology mutation behind
// the diff), which is what the monitor's predict-miss escalation path
// and refresh rotation exist to catch.
//
// # Confidence
//
// Confidence per block is the product of three control-plane signals
// (DESIGN.md §15): the tie-break margin of the final selection
// (Assignment.Margin, with FlipProb > 0 — flappy or near-tied blocks —
// clamping it low), the owning AS's refine-trajectory churn
// (Table.RefineChurn: rows still oscillating after pass 1 settle by
// tie-breaks the control plane calls with less certainty), and the
// AS's hop distance from the announcement diff's dirty cone
// (Table.ConeDistances: the blast radius of the change, where a wrong
// adopted row would hide).
package predict

import (
	"verfploeter/internal/bgp"
	"verfploeter/internal/ipv4"
	"verfploeter/internal/scenario"
	"verfploeter/internal/topology"
)

// DefaultThreshold is the confidence below which the monitor keeps
// sampling a block's stratum instead of trusting predicted-stable.
const DefaultThreshold = 0.75

// Config tunes the predictor.
type Config struct {
	// Threshold is the minimum per-block confidence for predicted-stable
	// skips (default DefaultThreshold). Carried here so every consumer
	// of a Prediction applies the same cut.
	Threshold float64
	// ConeHops is how far from the dirty cone the reduced-confidence
	// zone extends (default 2 hops).
	ConeHops int
}

func (c Config) fill() Config {
	if c.Threshold <= 0 {
		c.Threshold = DefaultThreshold
	}
	if c.ConeHops <= 0 {
		c.ConeHops = 2
	}
	return c
}

// Flip is one predicted per-block site change.
type Flip struct {
	Index int        // index into Topology.Blocks
	Block ipv4.Block // the /24
	From  int16      // steady-state site before (-1 = unrouted)
	To    int16      // steady-state site after (-1 = unrouted)
}

// Prediction is the control-plane answer to "what will the next sweep
// observe, given this routing diff?".
type Prediction struct {
	// Exact reports whether the preconditions for the exactness
	// contract held: both assignments computed on the same topology at
	// the same generation. When false every other field is zero and the
	// caller must fall back to probing.
	Exact bool
	// Threshold is the filled confidence cut from Config.
	Threshold float64
	// Flips lists every block whose (Primary, Secondary, FlipProb)
	// triple changed, ascending by block index. A superset of every
	// observable flip (see the package comment); From/To record the
	// steady-state (Primary) movement.
	Flips []Flip
	// Affected is the flip set closed under the dataplane's cross-block
	// alias rule: the flipped blocks plus each one's immediate topology
	// successor, whose observation can change through an aliased reply.
	// Strata touching this set must re-probe; strata disjoint from it
	// (at high confidence) may skip.
	Affected *ipv4.BlockSet
	// Conf[i] is block i's confidence in [0, 1] that the prediction for
	// that block (flip or stable) is what a probe would observe.
	Conf []float32

	prevAsg, curAsg *bgp.Assignment // retained for ObservableFlips
}

// ObservableFlips filters Flips down to the blocks whose *served* site
// actually changes at the given frozen measurement round — the
// dataplane answers from Assignment.SiteAt(i, round, seed), so a
// changed triple whose coin lands on the same site is invisible to a
// probe. This is the sharp per-round call the ext-predict precision
// tables score; Flips itself stays the conservative triple diff the
// Affected closure (and the monitor's skip rule) is built on.
func (p *Prediction) ObservableFlips(round uint32, seed uint64) []Flip {
	var out []Flip
	for _, f := range p.Flips {
		if p.prevAsg.SiteAt(f.Index, round, seed) != p.curAsg.SiteAt(f.Index, round, seed) {
			out = append(out, f)
		}
	}
	return out
}

// ObservableFlipsOn is ObservableFlips against the scenario's live data
// plane: its current measurement round and its seed — the exact coin
// Net.SiteAt will flip when the next sweep runs.
func (p *Prediction) ObservableFlipsOn(s *scenario.Scenario) []Flip {
	return p.ObservableFlips(s.Net.Round(), s.Seed)
}

// LowConfidence reports whether block index i falls below the
// prediction's confidence cut.
func (p *Prediction) LowConfidence(i int) bool {
	return float64(p.Conf[i]) < p.Threshold
}

// Diff predicts the observable consequence of moving from the routing
// state of prevAsg to that of curAsg. prevAsg must be the assignment
// the reference map was measured under; curAsg the one now deployed.
// Returns Exact=false (and nothing else) when the two assignments are
// not comparable — different topologies or generations — in which case
// only probing can answer.
func Diff(top *topology.Topology, prevAsg, curAsg *bgp.Assignment, cfg Config) *Prediction {
	cfg = cfg.fill()
	p := &Prediction{Threshold: cfg.Threshold}
	if top == nil || prevAsg == nil || curAsg == nil ||
		prevAsg.Table == nil || curAsg.Table == nil ||
		prevAsg.Table.Top != top || curAsg.Table.Top != top ||
		prevAsg.Table.Generation() != curAsg.Table.Generation() ||
		len(prevAsg.Primary) != len(top.Blocks) ||
		len(curAsg.Primary) != len(top.Blocks) {
		return p
	}
	p.Exact = true
	p.prevAsg, p.curAsg = prevAsg, curAsg
	blocks := top.Blocks

	// Flip set: the triple diff. Identical assignment pointers (the
	// stable-epoch fast path) skip the scan entirely.
	if prevAsg != curAsg {
		for i := range blocks {
			if prevAsg.Primary[i] != curAsg.Primary[i] ||
				prevAsg.Secondary[i] != curAsg.Secondary[i] ||
				prevAsg.FlipProb[i] != curAsg.FlipProb[i] {
				p.Flips = append(p.Flips, Flip{
					Index: i,
					Block: blocks[i].Block,
					From:  prevAsg.Primary[i],
					To:    curAsg.Primary[i],
				})
			}
		}
	}
	p.Affected = ipv4.NewBlockSet(2 * len(p.Flips))
	for _, f := range p.Flips {
		p.Affected.Add(f.Block)
		if f.Index+1 < len(blocks) {
			p.Affected.Add(blocks[f.Index+1].Block)
		}
	}

	// The cone discount only applies when this epoch actually carries a
	// diff: a stable epoch's table still remembers the cone of whatever
	// change originally derived it, and that stale blast radius says
	// nothing about an unchanged deployment.
	p.Conf = confidence(curAsg, cfg, prevAsg != curAsg)
	return p
}

// WhatIf predicts the flip set of deploying (extraPrepend, down) at the
// given tie-break epoch on the scenario, relative to its currently
// deployed routing, without touching the deployment: the candidate
// table is computed through the route cache's delta path and diffed
// against the live assignment.
func WhatIf(s *scenario.Scenario, extraPrepend []int, down []bool, epoch uint64, cfg Config) *Prediction {
	_, asg := s.PredictRouting(extraPrepend, down, epoch)
	return Diff(s.Top, s.Asg, asg, cfg)
}

// confidence scores every block of the deployed assignment. Pure
// function of the assignment's Margin/FlipProb columns and its table's
// refine trajectory and dirty cone, so identical runs reproduce.
func confidence(asg *bgp.Assignment, cfg Config, useCone bool) []float32 {
	t := asg.Table
	blocks := t.Top.Blocks

	// Per-AS factors first (churn, cone distance) — cheaper than
	// per-block, and both signals are AS-granular anyway.
	nAS := len(t.Top.ASes)
	asFactor := make([]float32, nAS)
	var coneD []uint8
	if useCone {
		coneD = t.ConeDistances(cfg.ConeHops)
	}
	for as := 0; as < nAS; as++ {
		f := churnScore(t.RefineChurn(int32(as)))
		if coneD != nil {
			f *= coneScore(coneD[as])
		}
		asFactor[as] = f
	}

	conf := make([]float32, len(blocks))
	for i := range blocks {
		conf[i] = marginScore(asg.Margin[i], asg.FlipProb[i]) * asFactor[blocks[i].ASIdx]
	}
	return conf
}

// marginScore maps the final-selection margin to [0, 1]. Flappy blocks
// (FlipProb > 0) sit at the floor no matter the margin: their frozen
// coin re-draws on any triple change, so "stable" is a weaker claim.
// Otherwise the score ramps linearly from the near-tie boundary
// (margin 1.15, the assignment layer's equal-cost threshold) to a
// comfortably decided selection at margin 1.5.
func marginScore(margin, flipProb float32) float32 {
	if flipProb > 0 {
		return 0.2
	}
	const lo, hi = 1.15, 1.5
	switch {
	case margin >= hi:
		return 1
	case margin <= lo:
		return 0.2
	}
	return 0.2 + 0.8*(margin-lo)/(hi-lo)
}

// churnScore discounts ASes whose refine trajectory was still changing
// after the first pass: each extra live pass roughly halves trust.
func churnScore(churn int) float32 {
	switch churn {
	case 0:
		return 1
	case 1:
		return 0.6
	}
	return 0.4
}

// coneScore discounts proximity to the announcement diff's recompute
// cone: in-cone ASes (distance 0) are where an incorrect stability
// claim would hide, direct neighbors slightly less so.
func coneScore(d uint8) float32 {
	switch d {
	case 0:
		return 0.5
	case 1:
		return 0.75
	case 2:
		return 0.9
	}
	return 1
}
