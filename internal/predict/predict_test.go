package predict

import (
	"testing"

	"verfploeter/internal/ipv4"
	"verfploeter/internal/scenario"
	"verfploeter/internal/topology"
)

// change is one announcement delta the recall property sweeps.
type change struct {
	name   string
	mutate func(s *scenario.Scenario) (pp []int, down []bool, epoch uint64)
}

func changes() []change {
	return []change{
		{"prepend", func(s *scenario.Scenario) ([]int, []bool, uint64) {
			pp := s.Prepends()
			pp[0] += 3
			return pp, s.DownSites(), s.RoutingEpoch()
		}},
		{"withdraw", func(s *scenario.Scenario) ([]int, []bool, uint64) {
			down := s.DownSites()
			down[1] = true
			return s.Prepends(), down, s.RoutingEpoch()
		}},
		{"tie-break", func(s *scenario.Scenario) ([]int, []bool, uint64) {
			return s.Prepends(), s.DownSites(), s.RoutingEpoch() + 1
		}},
	}
}

// TestWhatIfRecall is the exactness theorem as a property: for every
// announcement change, every block whose measured observation changes
// lies inside the predicted Affected set, and every block whose served
// site changes is an ObservableFlip. Checked across several seeds so
// the frozen coin exercises both flip directions.
func TestWhatIfRecall(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		for _, tc := range changes() {
			s := scenario.BRoot(topology.SizeTiny, seed)
			m0, _, err := s.MeasureSubset(900, nil)
			if err != nil {
				t.Fatal(err)
			}
			pp, down, epoch := tc.mutate(s)
			pr := WhatIf(s, pp, down, epoch, Config{})
			if !pr.Exact {
				t.Fatalf("seed %d %s: predictor stood down", seed, tc.name)
			}
			obsFlips := ipv4.NewBlockSet(64)
			for _, f := range pr.ObservableFlipsOn(s) {
				obsFlips.Add(f.Block)
			}

			s.ReannounceFull(pp, down, epoch)
			m1, _, err := s.MeasureSubset(900, nil)
			if err != nil {
				t.Fatal(err)
			}

			changed := 0
			for _, b := range m1.Blocks() {
				s1, _ := m1.SiteOf(b)
				s0, ok := m0.SiteOf(b)
				r0, _ := m0.RTTOf(b)
				r1, _ := m1.RTTOf(b)
				if ok && s0 == s1 && r0 == r1 {
					continue
				}
				changed++
				if !pr.Affected.Contains(b) {
					t.Errorf("seed %d %s: measured change at %v outside Affected", seed, tc.name, b)
				}
				if ok && s0 != s1 && !obsFlips.Contains(b) {
					t.Errorf("seed %d %s: measured site flip at %v not in ObservableFlips", seed, tc.name, b)
				}
			}
			for _, b := range m0.Blocks() {
				if _, ok := m1.SiteOf(b); !ok {
					changed++
					if !pr.Affected.Contains(b) {
						t.Errorf("seed %d %s: vanished block %v outside Affected", seed, tc.name, b)
					}
				}
			}
			if changed == 0 {
				t.Errorf("seed %d %s: change produced no measured drift — property vacuous", seed, tc.name)
			}
		}
	}
}

// TestDiffExactnessPreconditions: the predictor must stand down rather
// than guess when the two assignments are not comparable.
func TestDiffExactnessPreconditions(t *testing.T) {
	s := scenario.BRoot(topology.SizeTiny, 7)
	if pr := Diff(s.Top, nil, s.Asg, Config{}); pr.Exact {
		t.Error("nil prevAsg: want Exact=false")
	}
	if pr := Diff(s.Top, s.Asg, nil, Config{}); pr.Exact {
		t.Error("nil curAsg: want Exact=false")
	}
	other := scenario.BRoot(topology.SizeTiny, 7)
	if pr := Diff(s.Top, other.Asg, s.Asg, Config{}); pr.Exact {
		t.Error("foreign topology: want Exact=false")
	}
	if pr := Diff(s.Top, s.Asg, s.Asg, Config{}); !pr.Exact {
		t.Error("identical assignments: want Exact=true")
	}
}

// TestStableDiffEmpty: the identical-pointer fast path predicts no
// flips, an empty affected set, and full-length confidence.
func TestStableDiffEmpty(t *testing.T) {
	s := scenario.BRoot(topology.SizeTiny, 7)
	pr := Diff(s.Top, s.Asg, s.Asg, Config{})
	if !pr.Exact || len(pr.Flips) != 0 || pr.Affected.Len() != 0 {
		t.Fatalf("stable diff: Exact=%v flips=%d affected=%d, want true/0/0",
			pr.Exact, len(pr.Flips), pr.Affected.Len())
	}
	if len(pr.Conf) != len(s.Top.Blocks) {
		t.Fatalf("Conf length %d, want %d", len(pr.Conf), len(s.Top.Blocks))
	}
}

// TestConfidenceBounds: every score lies in [0,1] and flappy blocks
// (FlipProb > 0) sit below the default skip threshold.
func TestConfidenceBounds(t *testing.T) {
	s := scenario.BRoot(topology.SizeTiny, 7)
	prev := s.Asg
	pp := s.Prepends()
	pp[0] += 3
	s.ReannounceFull(pp, s.DownSites(), s.RoutingEpoch())
	moved := Diff(s.Top, prev, s.Asg, Config{})
	if !moved.Exact {
		t.Fatal("predictor stood down on a plain prepend")
	}

	flappy := 0
	for i := range s.Top.Blocks {
		c := moved.Conf[i]
		if c < 0 || c > 1 {
			t.Fatalf("block %d: confidence %v out of [0,1]", i, c)
		}
		if s.Asg.FlipProb[i] > 0 {
			flappy++
			if !moved.LowConfidence(i) {
				t.Errorf("block %d: FlipProb=%v but confidence %v >= threshold %v",
					i, s.Asg.FlipProb[i], c, moved.Threshold)
			}
		}
	}
	if flappy == 0 {
		t.Skip("no flappy blocks at this seed; floor property vacuous")
	}
}
