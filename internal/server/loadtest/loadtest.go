// Package loadtest drives lookup load against a server, either straight
// at a Tenant's in-process read path (the number BENCH files record) or
// over HTTP against a running daemon (the end-to-end smoke). Both
// drivers fan the address list across workers and count lookups, hits,
// and errors.
package loadtest

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"verfploeter/internal/ipv4"
	"verfploeter/internal/server"
)

// Result is one driver run's tally.
type Result struct {
	Lookups int
	Mapped  int
	Errors  int
	Elapsed time.Duration
}

// PerSecond is the achieved lookup rate.
func (r Result) PerSecond() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Lookups) / r.Elapsed.Seconds()
}

// Direct hammers the tenant's in-process lookup path: workers
// goroutines each issue perWorker lookups, striding through addrs from
// staggered offsets so workers don't touch the same cache lines in
// lockstep. This measures the snapshot read path itself — no HTTP, no
// serialization.
func Direct(t *server.Tenant, addrs []ipv4.Addr, workers, perWorker int) Result {
	if len(addrs) == 0 || workers <= 0 || perWorker <= 0 {
		return Result{}
	}
	var mapped, lookups atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			hits := 0
			for i := 0; i < perWorker; i++ {
				a := addrs[(off+i)%len(addrs)]
				if _, ok := t.Lookup(a); ok {
					hits++
				}
			}
			mapped.Add(int64(hits))
			lookups.Add(int64(perWorker))
		}(w * len(addrs) / workers)
	}
	wg.Wait()
	return Result{
		Lookups: int(lookups.Load()),
		Mapped:  int(mapped.Load()),
		Elapsed: time.Since(start),
	}
}

// HTTP drives the daemon's lookup endpoint: workers goroutines each
// issue perWorker GET /v1/tenants/{tenant}/lookup requests against
// baseURL. Any non-200 status, transport failure, or unparsable body
// counts as an error.
func HTTP(client *http.Client, baseURL, tenant string, addrs []ipv4.Addr, workers, perWorker int) Result {
	if len(addrs) == 0 || workers <= 0 || perWorker <= 0 {
		return Result{}
	}
	if client == nil {
		client = http.DefaultClient
	}
	var mapped, lookups, errs atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				a := addrs[(off+i)%len(addrs)]
				url := fmt.Sprintf("%s/v1/tenants/%s/lookup?ip=%s", baseURL, tenant, a)
				lookups.Add(1)
				resp, err := client.Get(url)
				if err != nil {
					errs.Add(1)
					continue
				}
				var body struct {
					Mapped bool `json:"mapped"`
				}
				err = json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					errs.Add(1)
					continue
				}
				if body.Mapped {
					mapped.Add(1)
				}
			}
		}(w * len(addrs) / workers)
	}
	wg.Wait()
	return Result{
		Lookups: int(lookups.Load()),
		Mapped:  int(mapped.Load()),
		Errors:  int(errs.Load()),
		Elapsed: time.Since(start),
	}
}
