package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"verfploeter/internal/ipv4"
	"verfploeter/internal/monitor"
	"verfploeter/internal/scenario"
	"verfploeter/internal/server"
	"verfploeter/internal/server/loadtest"
	"verfploeter/internal/topology"
)

// newTestServer builds a one-tenant server (b-root tiny, seed 7, query
// log attached, capacity 2x daily volume) in manual-advance mode, with
// the baseline epoch measured.
func newTestServer(t *testing.T) (*server.Server, *server.Tenant) {
	t.Helper()
	scn := scenario.BRoot(topology.SizeTiny, 7)
	log := scn.RootLog()
	capacity := make([]float64, len(scn.Sites))
	for i := range capacity {
		capacity[i] = 2 * log.TotalQPD()
	}
	tn, err := server.NewTenant(scn, server.TenantConfig{
		Name:     "t1",
		Monitor:  monitor.Config{LoadLog: log},
		Capacity: capacity,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sv := server.New(server.Config{})
	if err := sv.AddTenant(tn); err != nil {
		t.Fatal(err)
	}
	if err := sv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sv.Shutdown)
	return sv, tn
}

func getJSON(t *testing.T, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
}

func TestHTTPEndpoints(t *testing.T) {
	sv, tn := newTestServer(t)
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	var health struct {
		Status  string         `json:"status"`
		Tenants int            `json:"tenants"`
		Epochs  map[string]int `json:"epochs"`
	}
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &health)
	if health.Status != "ok" || health.Tenants != 1 || health.Epochs["t1"] != 0 {
		t.Fatalf("healthz = %+v", health)
	}

	// A mapped address answers with a real site and its annotations.
	sn := tn.Current()
	addr := sn.Blocks()[0].First()
	var lk struct {
		Tenant  string `json:"tenant"`
		Epoch   int    `json:"epoch"`
		Mapped  bool   `json:"mapped"`
		Site    string `json:"site"`
		Country string `json:"country"`
	}
	getJSON(t, fmt.Sprintf("%s/v1/tenants/t1/lookup?ip=%s", ts.URL, addr), http.StatusOK, &lk)
	if !lk.Mapped || lk.Tenant != "t1" || lk.Epoch != 0 || lk.Site == "" {
		t.Fatalf("lookup = %+v", lk)
	}
	want, _ := sn.Lookup(addr)
	if lk.Site != want.SiteCode || lk.Country != want.Country {
		t.Fatalf("lookup = %+v, want site %s country %s", lk, want.SiteCode, want.Country)
	}

	// Error paths: bad IP, missing IP, unknown tenant.
	getJSON(t, ts.URL+"/v1/tenants/t1/lookup?ip=not-an-ip", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/v1/tenants/t1/lookup", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/v1/tenants/nope/lookup?ip=1.2.3.4", http.StatusNotFound, nil)

	// Sites: every site listed, shares summing to ~1, utilization
	// against the declared 2x capacity.
	var sites struct {
		Epoch    int     `json:"epoch"`
		TotalQPD float64 `json:"total_qpd"`
		Sites    []struct {
			Code        string  `json:"code"`
			Blocks      int     `json:"blocks"`
			LoadShare   float64 `json:"load_share"`
			Utilization float64 `json:"utilization"`
		} `json:"sites"`
	}
	getJSON(t, ts.URL+"/v1/tenants/t1/sites", http.StatusOK, &sites)
	if len(sites.Sites) != len(sn.Sites) || sites.TotalQPD <= 0 {
		t.Fatalf("sites = %+v", sites)
	}
	sum := 0.0
	for _, s := range sites.Sites {
		sum += s.LoadShare
		if s.Utilization < 0 || s.Utilization > 0.5+1e-9 {
			t.Fatalf("site %s utilization %v out of range for 2x capacity", s.Code, s.Utilization)
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("load shares sum to %v", sum)
	}

	// POST advance steps an epoch; drift?since filters events by epoch.
	var adv struct {
		Epoch  int  `json:"epoch"`
		Swept  bool `json:"swept"`
		Probes int  `json:"probes"`
	}
	resp, err := http.Post(ts.URL+"/v1/tenants/t1/advance", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&adv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if adv.Epoch != 1 || adv.Swept || adv.Probes <= 0 {
		t.Fatalf("advance = %+v", adv)
	}
	var drift struct {
		Since  int `json:"since"`
		Events []struct {
			Epoch int    `json:"epoch"`
			Type  string `json:"type"`
		} `json:"events"`
	}
	getJSON(t, ts.URL+"/v1/tenants/t1/drift?since=99", http.StatusOK, &drift)
	if drift.Since != 99 || len(drift.Events) != 0 {
		t.Fatalf("drift since=99 = %+v", drift)
	}
	getJSON(t, ts.URL+"/v1/tenants/t1/drift?since=bogus", http.StatusBadRequest, nil)
	// A negative since is a caller bug too — epochs start at 0 — and must
	// 400 rather than silently dump the whole log.
	getJSON(t, ts.URL+"/v1/tenants/t1/drift?since=-1", http.StatusBadRequest, nil)

	// GET on a POST-only route must not match.
	getJSON(t, ts.URL+"/v1/tenants/t1/advance", http.StatusMethodNotAllowed, nil)

	// The tenant listing reflects the advanced epoch.
	var list []struct {
		Name  string `json:"name"`
		Epoch int    `json:"epoch"`
	}
	getJSON(t, ts.URL+"/v1/tenants", http.StatusOK, &list)
	if len(list) != 1 || list[0].Name != "t1" || list[0].Epoch != 1 {
		t.Fatalf("tenants = %+v", list)
	}
}

// TestSweepForcesFullProbe checks POST .../sweep on a sampling tenant:
// the forced epoch re-probes far more than the sampled cadence and the
// snapshot is flagged swept.
func TestSweepForcesFullProbe(t *testing.T) {
	scn := scenario.BRoot(topology.SizeTiny, 7)
	tn, err := server.NewTenant(scn, server.TenantConfig{
		Name:    "s",
		Monitor: monitor.Config{Sample: 0.1},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sv := server.New(server.Config{})
	if err := sv.AddTenant(tn); err != nil {
		t.Fatal(err)
	}
	if err := sv.Start(); err != nil {
		t.Fatal(err)
	}
	defer sv.Shutdown()
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	sampled, err := tn.Advance(false)
	if err != nil {
		t.Fatal(err)
	}
	var swept struct {
		Epoch  int  `json:"epoch"`
		Swept  bool `json:"swept"`
		Probes int  `json:"probes"`
	}
	resp, err := http.Post(ts.URL+"/v1/tenants/s/sweep", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&swept); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !swept.Swept || swept.Epoch != 2 {
		t.Fatalf("sweep = %+v", swept)
	}
	if swept.Probes <= sampled.Probes {
		t.Fatalf("forced sweep sent %d probes, sampled epoch %d — sweep should re-probe more",
			swept.Probes, sampled.Probes)
	}
}

// TestTickerAdvancesEpochs covers the real-time cadence: with a short
// EpochInterval the server advances tenants without any API calls.
func TestTickerAdvancesEpochs(t *testing.T) {
	scn := scenario.BRoot(topology.SizeTiny, 7)
	tn, err := server.NewTenant(scn, server.TenantConfig{Name: "tick"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sv := server.New(server.Config{EpochInterval: 5 * time.Millisecond})
	if err := sv.AddTenant(tn); err != nil {
		t.Fatal(err)
	}
	if err := sv.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for tn.Epoch() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	sv.Shutdown()
	if tn.Epoch() < 2 {
		t.Fatalf("ticker advanced to epoch %d, want >= 2", tn.Epoch())
	}
	// After Shutdown the epoch loop is quiescent: the tenant stays
	// readable and stops advancing.
	e := tn.Epoch()
	time.Sleep(20 * time.Millisecond)
	if tn.Epoch() != e {
		t.Fatal("epochs still advancing after Shutdown")
	}
}

// TestLoadtestDrivers smoke-tests both loadtest drivers against a live
// server: the in-process path and the HTTP path must complete every
// lookup without errors and agree that mapped addresses map.
func TestLoadtestDrivers(t *testing.T) {
	sv, tn := newTestServer(t)
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	blocks := tn.Current().Blocks()
	list := make([]ipv4.Addr, 0, len(blocks))
	for _, b := range blocks {
		list = append(list, b.First())
	}

	direct := loadtest.Direct(tn, list, 4, 500)
	if direct.Lookups != 2000 || direct.Mapped != 2000 {
		t.Fatalf("direct = %+v", direct)
	}
	if direct.PerSecond() <= 0 {
		t.Fatal("direct rate not positive")
	}

	httpRes := loadtest.HTTP(ts.Client(), ts.URL, "t1", list[:10], 4, 25)
	if httpRes.Errors != 0 || httpRes.Lookups != 100 || httpRes.Mapped != 100 {
		t.Fatalf("http = %+v", httpRes)
	}
}
