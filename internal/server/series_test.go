package server

import (
	"bytes"
	"testing"

	"verfploeter/internal/dataset"
	"verfploeter/internal/monitor"
	"verfploeter/internal/scenario"
	"verfploeter/internal/topology"
)

// TestDaemonSeriesByteIdentical is the byte-identity guard: a tenant's
// monitoring series accumulated by the daemon's stepwise Advance path
// must serialize byte-for-byte identically to the same scenario run
// through the one-shot monitor.Run path (what cmd/verfploeter -monitor
// -save-series writes). Sampling mode plus operator actions exercise
// the delta encoder's full surface.
func TestDaemonSeriesByteIdentical(t *testing.T) {
	const epochs = 4
	mk := func() (*scenario.Scenario, monitor.Config) {
		scn := scenario.BRoot(topology.SizeTiny, 7)
		return scn, monitor.Config{
			Epochs:  epochs,
			Sample:  0.25,
			Actions: driftActions(len(scn.Sites), epochs),
		}
	}

	scnA, cfg := mk()
	res, err := monitor.Run(scnA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var cli bytes.Buffer
	if err := dataset.WriteSeries(&cli, res.Series); err != nil {
		t.Fatal(err)
	}

	scnB, cfg := mk()
	tn, err := NewTenant(scnB, TenantConfig{Name: "guard", Monitor: cfg}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < epochs; e++ {
		if _, err := tn.Advance(false); err != nil {
			t.Fatal(err)
		}
	}
	var daemon bytes.Buffer
	if err := dataset.WriteSeries(&daemon, tn.Series()); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(cli.Bytes(), daemon.Bytes()) {
		t.Fatalf("daemon series (%d bytes) differs from monitor.Run series (%d bytes)",
			daemon.Len(), cli.Len())
	}
}
