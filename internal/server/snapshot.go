// Package server turns the library into a long-running multi-tenant
// measurement service — the operational form both the Tangled testbed
// (service behind an API) and the anycast-agility playbook assume.
// Each tenant owns a deployment and a stepwise monitoring session
// (internal/monitor.Session) on the virtual clock; every completed
// epoch publishes an immutable Snapshot — flat columnar state over a
// sorted block index — swapped in with one atomic pointer store, so the
// query path answers "which site catches this address?" at millions of
// lookups per second without ever taking a lock, and an epoch swap can
// never stall or tear a reader: a request observes exactly one epoch's
// site, load, and annotation state, whichever pointer it loaded.
package server

import (
	"time"

	"verfploeter/internal/colstore"
	"verfploeter/internal/ipv4"
	"verfploeter/internal/loadmodel"
	"verfploeter/internal/querylog"
	"verfploeter/internal/scenario"
	"verfploeter/internal/topology"
	"verfploeter/internal/verfploeter"
)

// SiteLoad is one site's standing in a snapshot: block count, block and
// load shares, and utilization against the tenant's declared capacity.
type SiteLoad struct {
	Code string
	// Blocks is the number of /24 blocks the site catches; BlockShare
	// its fraction of the mapped blocks.
	Blocks     int
	BlockShare float64
	// LoadShare is the site's share of predicted query load when the
	// tenant has a query log (§3.2's load weighting); equal to
	// BlockShare otherwise.
	LoadShare float64
	// LoadQPD is the predicted queries/day landing on the site (0
	// without a log); CapacityQPD the tenant-declared ceiling (0 =
	// undeclared); Utilization their ratio.
	LoadQPD     float64
	CapacityQPD float64
	Utilization float64
}

// LookupResult answers one catchment query, annotated the way the
// paper's analyses slice catchments: serving site with the measured
// RTT, plus the origin AS and country of the block.
type LookupResult struct {
	Epoch    int
	Block    ipv4.Block
	Site     int
	SiteCode string
	// RTT is the round-trip time measured for the block's probe (0 =
	// reply carried no usable RTT, e.g. an aliased observation).
	RTT     time.Duration
	ASN     uint32
	ASName  string
	Country string
}

// Snapshot is one epoch's immutable read state: the catchment flattened
// into columns over a sorted /24 block index (the anycast analogue of a
// longest-prefix match — catchments are /24-grained, so LPM collapses
// to one binary search over the block column), per-block AS/country
// annotation ids resolved against the shared immutable topology, and
// the per-site load table. Snapshots are never mutated after Build;
// readers may share one freely across goroutines.
type Snapshot struct {
	Tenant   string
	Scenario string
	Epoch    int
	// VTime is the tenant's virtual-clock time when the epoch
	// completed; Swept marks a snapshot produced by an operator-forced
	// full re-probe (POST .../sweep) rather than the regular cadence.
	VTime time.Duration
	Swept bool

	// Columns, aligned to ix: the catchment site, RTT nanoseconds (0 =
	// none), owning-AS index, and country index of block ix.At(i).
	ix    *colstore.Index
	sites []int16
	rttNS []int64
	asIdx []int32
	cnIdx []uint16

	top *topology.Topology

	// Sites is the per-site load table; TotalQPD the tenant log's daily
	// query volume (0 without a log).
	Sites    []SiteLoad
	TotalQPD float64

	// fp is the build-time integrity fingerprint over the columns; the
	// concurrency tests recompute it mid-hammer to prove a reader can
	// never observe a half-swapped snapshot.
	fp uint64
}

// BuildSnapshot flattens one epoch's catchment into an immutable read
// snapshot. Cost is one O(n log n)-ish pass over the mapped blocks
// (Blocks() sorts only when a map tail exists); the read path then
// never touches the catchment again.
func BuildSnapshot(tenant string, epoch int, swept bool, scn *scenario.Scenario,
	c *verfploeter.Catchment, log *querylog.Log, capacity []float64) *Snapshot {

	blocks := c.Blocks() // ascending, unique
	sn := &Snapshot{
		Tenant:   tenant,
		Scenario: scn.Name,
		Epoch:    epoch,
		VTime:    scn.Clock.Now(),
		Swept:    swept,
		ix:       colstore.NewIndex(blocks),
		sites:    make([]int16, len(blocks)),
		rttNS:    make([]int64, len(blocks)),
		asIdx:    make([]int32, len(blocks)),
		cnIdx:    make([]uint16, len(blocks)),
		top:      scn.Top,
	}
	fp := fpSeed ^ uint64(epoch)
	for i, b := range blocks {
		site, _ := c.SiteOf(b)
		rtt, _ := c.RTTOf(b)
		sn.sites[i] = int16(site)
		sn.rttNS[i] = int64(rtt)
		if ti := scn.Top.BlockIndex(b); ti >= 0 {
			bi := &scn.Top.Blocks[ti]
			sn.asIdx[i] = bi.ASIdx
			sn.cnIdx[i] = bi.CountryIdx
		} else {
			sn.asIdx[i] = -1
		}
		fp = fpMix(fp, uint64(b)<<16|uint64(uint16(site)))
	}

	counts := c.Counts()
	var est *loadmodel.Estimate
	if log != nil {
		est = loadmodel.Predict(c, log, loadmodel.ByQueries)
		sn.TotalQPD = log.TotalQPD()
	}
	sn.Sites = make([]SiteLoad, len(scn.Sites))
	for s := range scn.Sites {
		sl := SiteLoad{
			Code:       scn.Sites[s].Code,
			Blocks:     counts[s],
			BlockShare: c.Fraction(s),
		}
		sl.LoadShare = sl.BlockShare
		if est != nil {
			sl.LoadShare = est.Fraction(s)
			sl.LoadQPD = est.BySite[s]
		}
		if s < len(capacity) && capacity[s] > 0 {
			sl.CapacityQPD = capacity[s]
			sl.Utilization = sl.LoadQPD / capacity[s]
		}
		sn.Sites[s] = sl
		fp = fpMix(fp, uint64(counts[s]))
	}
	sn.fp = fp
	return sn
}

// Lookup answers "which site catches this address?" from the snapshot
// alone: one binary search over the block column plus array reads.
// ok is false when the address's /24 block is unmapped in this epoch.
// The hot path allocates nothing; the returned strings alias the
// snapshot's and topology's immutable tables.
func (sn *Snapshot) Lookup(a ipv4.Addr) (LookupResult, bool) {
	id := sn.ix.Of(a.Block())
	if id < 0 {
		return LookupResult{Epoch: sn.Epoch, Site: -1}, false
	}
	r := LookupResult{
		Epoch:    sn.Epoch,
		Block:    sn.ix.At(id),
		Site:     int(sn.sites[id]),
		SiteCode: sn.Sites[sn.sites[id]].Code,
		RTT:      time.Duration(sn.rttNS[id]),
	}
	if ai := sn.asIdx[id]; ai >= 0 {
		as := &sn.top.ASes[ai]
		r.ASN = as.ASN
		r.ASName = as.Name
		r.Country = topology.Countries[sn.cnIdx[id]].Code
	}
	return r, true
}

// Len returns the number of mapped blocks in the snapshot.
func (sn *Snapshot) Len() int { return sn.ix.Len() }

// Blocks returns the snapshot's sorted mapped blocks (read-only).
func (sn *Snapshot) Blocks() []ipv4.Block { return sn.ix.Blocks() }

// CheckIntegrity recomputes the build-time fingerprint over the columns
// and site table. It can only fail if a reader ever observed a torn or
// half-initialized snapshot — the property the atomic-swap contract
// promises can't happen, and the race tests hammer.
func (sn *Snapshot) CheckIntegrity() bool {
	fp := fpSeed ^ uint64(sn.Epoch)
	for i, b := range sn.ix.Blocks() {
		fp = fpMix(fp, uint64(b)<<16|uint64(uint16(sn.sites[i])))
	}
	for _, sl := range sn.Sites {
		fp = fpMix(fp, uint64(sl.Blocks))
	}
	return fp == sn.fp
}

const fpSeed = 0x5e4fe12a9c37d81b

// fpMix folds v into the running fingerprint (splitmix64 finalizer).
func fpMix(h, v uint64) uint64 {
	x := h ^ v*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
