package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"verfploeter/internal/ipv4"
	"verfploeter/internal/obsv"
)

// Config parameterizes the daemon.
type Config struct {
	// Obs is the shared instrumentation registry (nil disables the
	// server_* metrics).
	Obs *obsv.Registry
	// EpochInterval is the real-time cadence at which Start's ticker
	// advances every tenant one epoch. 0 disables the ticker — epochs
	// then only move through POST .../advance, the deterministic mode
	// tests and the CI smoke use.
	EpochInterval time.Duration
}

// Server hosts the tenants and serves the query API. Handler routes are
// stable under concurrent epoch advancement: lookups read atomically
// published snapshots and never contend with the write side.
type Server struct {
	cfg     Config
	mu      sync.Mutex // guards tenants map mutation (AddTenant)
	tenants map[string]*Tenant
	names   []string // sorted, for deterministic listings

	stop chan struct{}
	wg   sync.WaitGroup
}

// New builds an empty server.
func New(cfg Config) *Server {
	return &Server{cfg: cfg, tenants: map[string]*Tenant{}, stop: make(chan struct{})}
}

// AddTenant registers a tenant before Start.
func (sv *Server) AddTenant(t *Tenant) error {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if _, dup := sv.tenants[t.Name]; dup {
		return fmt.Errorf("server: duplicate tenant %q", t.Name)
	}
	sv.tenants[t.Name] = t
	sv.names = append(sv.names, t.Name)
	sort.Strings(sv.names)
	return nil
}

// Tenant returns a registered tenant by name.
func (sv *Server) Tenant(name string) (*Tenant, bool) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	t, ok := sv.tenants[name]
	return t, ok
}

// Tenants returns the tenant names in sorted order.
func (sv *Server) Tenants() []string {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return append([]string(nil), sv.names...)
}

// Start measures every tenant's baseline epoch (in name order, so
// multi-tenant startup is deterministic) and, when EpochInterval > 0,
// launches the real-time ticker that advances every tenant each tick.
// The API is answerable as soon as Start returns.
func (sv *Server) Start() error {
	for _, name := range sv.Tenants() {
		t, _ := sv.Tenant(name)
		if _, err := t.Advance(false); err != nil {
			return fmt.Errorf("server: tenant %s baseline: %w", name, err)
		}
	}
	if sv.cfg.EpochInterval > 0 {
		sv.wg.Add(1)
		go sv.tick()
	}
	return nil
}

func (sv *Server) tick() {
	defer sv.wg.Done()
	tk := time.NewTicker(sv.cfg.EpochInterval)
	defer tk.Stop()
	for {
		select {
		case <-sv.stop:
			return
		case <-tk.C:
			for _, name := range sv.Tenants() {
				select {
				case <-sv.stop:
					return
				default:
				}
				t, _ := sv.Tenant(name)
				_, _ = t.Advance(false) // epoch errors surface via /healthz epoch staleness
			}
		}
	}
}

// Shutdown stops the epoch ticker and waits for any in-flight epoch to
// finish. Tenants stay readable (Series, Lookup) afterwards — the
// daemon's flush path runs after Shutdown returns.
func (sv *Server) Shutdown() {
	select {
	case <-sv.stop:
	default:
		close(sv.stop)
	}
	sv.wg.Wait()
}

// Handler returns the HTTP API:
//
//	GET  /healthz
//	GET  /v1/tenants
//	GET  /v1/tenants/{tenant}/lookup?ip=A.B.C.D
//	GET  /v1/tenants/{tenant}/sites
//	GET  /v1/tenants/{tenant}/drift?since=N
//	POST /v1/tenants/{tenant}/sweep
//	POST /v1/tenants/{tenant}/advance
func (sv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", sv.handleHealthz)
	mux.HandleFunc("GET /v1/tenants", sv.handleTenants)
	mux.HandleFunc("GET /v1/tenants/{tenant}/lookup", sv.withTenant(sv.handleLookup))
	mux.HandleFunc("GET /v1/tenants/{tenant}/sites", sv.withTenant(sv.handleSites))
	mux.HandleFunc("GET /v1/tenants/{tenant}/drift", sv.withTenant(sv.handleDrift))
	mux.HandleFunc("POST /v1/tenants/{tenant}/sweep", sv.withTenant(sv.handleSweep))
	mux.HandleFunc("POST /v1/tenants/{tenant}/advance", sv.withTenant(sv.handleAdvance))
	return mux
}

func (sv *Server) withTenant(h func(http.ResponseWriter, *http.Request, *Tenant)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t, ok := sv.Tenant(r.PathValue("tenant"))
		if !ok {
			writeErr(w, http.StatusNotFound, "unknown tenant %q", r.PathValue("tenant"))
			return
		}
		h(w, r, t)
	}
}

type healthzResponse struct {
	Status  string         `json:"status"`
	Tenants int            `json:"tenants"`
	Epochs  map[string]int `json:"epochs"`
	Blocks  map[string]int `json:"blocks"`
}

func (sv *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	resp := healthzResponse{Status: "ok", Epochs: map[string]int{}, Blocks: map[string]int{}}
	for _, name := range sv.Tenants() {
		t, _ := sv.Tenant(name)
		resp.Tenants++
		resp.Epochs[name] = t.Epoch()
		if sn := t.Current(); sn != nil {
			resp.Blocks[name] = sn.Len()
		} else {
			resp.Status = "starting"
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

type tenantInfo struct {
	Name     string `json:"name"`
	Scenario string `json:"scenario"`
	Epoch    int    `json:"epoch"`
	Blocks   int    `json:"blocks"`
	VTimeSec int64  `json:"vtime_sec"`
}

func (sv *Server) handleTenants(w http.ResponseWriter, _ *http.Request) {
	out := []tenantInfo{}
	for _, name := range sv.Tenants() {
		t, _ := sv.Tenant(name)
		ti := tenantInfo{Name: name, Epoch: -1}
		if sn := t.Current(); sn != nil {
			ti.Scenario = sn.Scenario
			ti.Epoch = sn.Epoch
			ti.Blocks = sn.Len()
			ti.VTimeSec = int64(sn.VTime / time.Second)
		}
		out = append(out, ti)
	}
	writeJSON(w, http.StatusOK, out)
}

type lookupResponse struct {
	Tenant    string `json:"tenant"`
	Epoch     int    `json:"epoch"`
	IP        string `json:"ip"`
	Block     string `json:"block"`
	Mapped    bool   `json:"mapped"`
	Site      string `json:"site,omitempty"`
	SiteIndex int    `json:"site_index"`
	RTTNS     int64  `json:"rtt_ns,omitempty"`
	ASN       uint32 `json:"asn,omitempty"`
	AS        string `json:"as,omitempty"`
	Country   string `json:"country,omitempty"`
}

func (sv *Server) handleLookup(w http.ResponseWriter, r *http.Request, t *Tenant) {
	ipStr := r.URL.Query().Get("ip")
	if ipStr == "" {
		writeErr(w, http.StatusBadRequest, "missing ip query parameter")
		return
	}
	a, err := ipv4.ParseAddr(ipStr)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad ip %q: %v", ipStr, err)
		return
	}
	res, ok := t.Lookup(a)
	resp := lookupResponse{
		Tenant:    t.Name,
		Epoch:     res.Epoch,
		IP:        a.String(),
		Block:     a.Block().String(),
		Mapped:    ok,
		SiteIndex: res.Site,
	}
	if ok {
		resp.Site = res.SiteCode
		resp.RTTNS = int64(res.RTT)
		resp.ASN = res.ASN
		resp.AS = res.ASName
		resp.Country = res.Country
	}
	writeJSON(w, http.StatusOK, resp)
}

type siteEntry struct {
	Code        string  `json:"code"`
	Blocks      int     `json:"blocks"`
	BlockShare  float64 `json:"block_share"`
	LoadShare   float64 `json:"load_share"`
	LoadQPD     float64 `json:"load_qpd,omitempty"`
	CapacityQPD float64 `json:"capacity_qpd,omitempty"`
	Utilization float64 `json:"utilization,omitempty"`
}

type sitesResponse struct {
	Tenant   string      `json:"tenant"`
	Epoch    int         `json:"epoch"`
	Swept    bool        `json:"swept"`
	TotalQPD float64     `json:"total_qpd,omitempty"`
	Sites    []siteEntry `json:"sites"`
}

func (sv *Server) handleSites(w http.ResponseWriter, _ *http.Request, t *Tenant) {
	sn := t.Current()
	if sn == nil {
		writeErr(w, http.StatusServiceUnavailable, "tenant %s has no snapshot yet", t.Name)
		return
	}
	resp := sitesResponse{Tenant: t.Name, Epoch: sn.Epoch, Swept: sn.Swept, TotalQPD: sn.TotalQPD}
	for _, sl := range sn.Sites {
		resp.Sites = append(resp.Sites, siteEntry{
			Code:        sl.Code,
			Blocks:      sl.Blocks,
			BlockShare:  sl.BlockShare,
			LoadShare:   sl.LoadShare,
			LoadQPD:     sl.LoadQPD,
			CapacityQPD: sl.CapacityQPD,
			Utilization: sl.Utilization,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

type driftEvent struct {
	Epoch     int     `json:"epoch"`
	Type      string  `json:"type"`
	Cause     string  `json:"cause"`
	Site      int     `json:"site"`
	Blocks    int     `json:"blocks"`
	Magnitude float64 `json:"magnitude"`
}

// predictInfo reports the tenant's predicted-vs-observed tally when the
// probe-free fast path is on: hits are re-observed changes the control
// plane called in advance, misses drift it did not see coming
// (out-of-band perturbation, surfaced as predict-miss events), and
// skipped_strata the cumulative strata that went entirely unprobed on
// the exactness contract's word.
type predictInfo struct {
	Hits          int `json:"hits"`
	Misses        int `json:"misses"`
	SkippedStrata int `json:"skipped_strata"`
}

type driftResponse struct {
	Tenant  string       `json:"tenant"`
	Since   int          `json:"since"`
	Events  []driftEvent `json:"events"`
	Predict *predictInfo `json:"predict,omitempty"`
}

func (sv *Server) handleDrift(w http.ResponseWriter, r *http.Request, t *Tenant) {
	since := 0
	if s := r.URL.Query().Get("since"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad since %q: %v", s, err)
			return
		}
		if n < 0 {
			// A negative epoch is always a caller bug (epochs start at 0);
			// silently returning the whole log would hide it.
			writeErr(w, http.StatusBadRequest, "bad since %d: must be >= 0", n)
			return
		}
		since = n
	}
	resp := driftResponse{Tenant: t.Name, Since: since, Events: []driftEvent{}}
	if hits, misses, skipped, on := t.PredictStats(); on {
		resp.Predict = &predictInfo{Hits: hits, Misses: misses, SkippedStrata: skipped}
	}
	for _, ev := range t.Events(since) {
		resp.Events = append(resp.Events, driftEvent{
			Epoch:     ev.Epoch,
			Type:      ev.Type.String(),
			Cause:     ev.Cause.String(),
			Site:      ev.Site,
			Blocks:    ev.Blocks,
			Magnitude: ev.Magnitude,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

type advanceResponse struct {
	Tenant string `json:"tenant"`
	Epoch  int    `json:"epoch"`
	Swept  bool   `json:"swept"`
	Probes int    `json:"probes"`
	Blocks int    `json:"blocks"`
	Events int    `json:"events"`
}

func (sv *Server) advance(w http.ResponseWriter, t *Tenant, full bool) {
	er, err := t.Advance(full)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "epoch step: %v", err)
		return
	}
	sn := t.Current()
	writeJSON(w, http.StatusOK, advanceResponse{
		Tenant: t.Name,
		Epoch:  er.Epoch,
		Swept:  sn.Swept,
		Probes: er.Probes,
		Blocks: sn.Len(),
		Events: len(er.Events),
	})
}

// handleSweep forces the next epoch to re-probe the full hitlist — the
// operator's "re-map everything now" trigger — and runs it immediately.
func (sv *Server) handleSweep(w http.ResponseWriter, _ *http.Request, t *Tenant) {
	sv.advance(w, t, true)
}

// handleAdvance steps one regular epoch on demand — the test hook that
// substitutes for the real-time ticker when EpochInterval is 0.
func (sv *Server) handleAdvance(w http.ResponseWriter, _ *http.Request, t *Tenant) {
	sv.advance(w, t, false)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
