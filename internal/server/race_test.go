package server

import (
	"sync"
	"sync/atomic"
	"testing"

	"verfploeter/internal/ipv4"
	"verfploeter/internal/monitor"
	"verfploeter/internal/scenario"
	"verfploeter/internal/topology"
	"verfploeter/internal/verfploeter"
)

// driftActions builds an operator schedule that reshapes the catchment
// at every epoch, so each epoch's map (and therefore snapshot) differs
// from its neighbors — the property the consistency checks below need
// to detect a torn read.
func driftActions(nSites, epochs int) []monitor.Action {
	var acts []monitor.Action
	for e := 1; e < epochs; e++ {
		pp := make([]int, nSites)
		pp[e%nSites] = 1 + e%3
		acts = append(acts, monitor.Action{Epoch: e, Prepend: pp})
	}
	return acts
}

// TestConcurrentLookupDuringSwaps hammers the lock-free lookup path
// from many goroutines while the write side advances epochs and swaps
// snapshots, asserting every single response is internally consistent:
// the site returned for a block is exactly the site the reference run
// mapped at the epoch the response claims, and the snapshot's load
// table and integrity fingerprint belong to that same epoch. Run under
// -race this is the subsystem's central correctness proof: an epoch
// swap can neither block nor tear a reader.
func TestConcurrentLookupDuringSwaps(t *testing.T) {
	const epochs = 6

	// Reference run: the same deterministic campaign, epoch by epoch.
	ref := scenario.BRoot(topology.SizeTiny, 7)
	cfg := monitor.Config{Epochs: epochs, Actions: driftActions(len(ref.Sites), epochs)}
	refRes, err := monitor.Run(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	refMaps := make([]*verfploeter.Catchment, epochs)
	refCounts := make([][]int, epochs)
	for e, er := range refRes.Epochs {
		refMaps[e] = er.Map
		refCounts[e] = er.Map.Counts()
	}

	// Live tenant on an identical fresh scenario.
	scn := scenario.BRoot(topology.SizeTiny, 7)
	tn, err := NewTenant(scn, TenantConfig{Name: "race", Monitor: cfg}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Advance(false); err != nil {
		t.Fatal(err)
	}

	// Query the union of all mapped blocks so readers cross blocks that
	// appear, vanish, and flip across the campaign.
	seen := map[ipv4.Block]bool{}
	var addrs []ipv4.Addr
	for _, m := range refMaps {
		for _, b := range m.Blocks() {
			if !seen[b] {
				seen[b] = true
				addrs = append(addrs, b.First())
			}
		}
	}

	var stop atomic.Bool
	var checked atomic.Int64
	errCh := make(chan string, 16)
	fail := func(msg string) {
		select {
		case errCh <- msg:
		default:
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; !stop.Load(); i++ {
				a := addrs[i%len(addrs)]
				r, ok := tn.Lookup(a)
				if r.Epoch < 0 || r.Epoch >= epochs {
					fail("lookup returned epoch out of range")
					return
				}
				wantSite, wantOK := refMaps[r.Epoch].SiteOf(a.Block())
				if ok != wantOK || (ok && r.Site != wantSite) {
					fail("lookup result does not match its own epoch's reference map")
					return
				}
				if ok && r.SiteCode != scn.Sites[wantSite].Code {
					fail("site code does not match site index")
					return
				}
				checked.Add(1)
				// Every so often, pin a whole snapshot: its load table
				// and fingerprint must both belong to its epoch.
				if i%512 == 0 {
					sn := tn.Current()
					if !sn.CheckIntegrity() {
						fail("snapshot fingerprint mismatch (torn snapshot)")
						return
					}
					for s, sl := range sn.Sites {
						if sl.Blocks != refCounts[sn.Epoch][s] {
							fail("site load table from a different epoch than the snapshot")
							return
						}
					}
				}
			}
		}(w)
	}

	for e := 1; e < epochs; e++ {
		if _, err := tn.Advance(false); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	select {
	case msg := <-errCh:
		t.Fatal(msg)
	default:
	}
	if checked.Load() == 0 {
		t.Fatal("readers performed no lookups")
	}
	if got := tn.Epoch(); got != epochs-1 {
		t.Fatalf("final epoch = %d, want %d", got, epochs-1)
	}
}

// TestConcurrentDriftPollDuringAdvance is the regression test for the
// Events lock hold: drift polls used to scan and copy the whole event
// log while holding the epoch-step mutex, so a busy poller could stall
// Advance (and vice versa). Now the lock covers only a slice-header
// snapshot. The test hammers Events with every since boundary while
// the write side advances a drift-heavy campaign, asserting each poll
// returns a consistent, correctly-filtered, epoch-ordered view.
func TestConcurrentDriftPollDuringAdvance(t *testing.T) {
	const epochs = 6
	cfg := monitor.Config{Epochs: epochs}
	scn := scenario.BRoot(topology.SizeTiny, 7)
	cfg.Actions = driftActions(len(scn.Sites), epochs)
	tn, err := NewTenant(scn, TenantConfig{Name: "poll", Monitor: cfg}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Advance(false); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var polls atomic.Int64
	errCh := make(chan string, 16)
	fail := func(msg string) {
		select {
		case errCh <- msg:
		default:
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; !stop.Load(); i++ {
				since := i % (epochs + 1)
				evs := tn.Events(since)
				last := -1
				for _, ev := range evs {
					if ev.Epoch < since {
						fail("Events returned an event before the since boundary")
						return
					}
					if ev.Epoch < last {
						fail("Events returned out of epoch order")
						return
					}
					last = ev.Epoch
				}
				// A poll from 0 can never see fewer events than a later
				// concurrent poll from the same boundary already saw.
				polls.Add(1)
			}
		}(w)
	}

	for e := 1; e < epochs; e++ {
		if _, err := tn.Advance(false); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	select {
	case msg := <-errCh:
		t.Fatal(msg)
	default:
	}
	if polls.Load() == 0 {
		t.Fatal("pollers performed no drift queries")
	}
	// The settled log must agree with the reference run's event stream.
	all := tn.Events(0)
	want := len(tn.sess.Result().Events)
	if len(all) != want || len(tn.Events(epochs)) != 0 {
		t.Fatalf("settled Events(0) = %d events, want %d (and Events(%d) empty)",
			len(all), want, epochs)
	}
}
