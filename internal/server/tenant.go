package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"verfploeter/internal/dataset"
	"verfploeter/internal/ipv4"
	"verfploeter/internal/monitor"
	"verfploeter/internal/obsv"
	"verfploeter/internal/querylog"
	"verfploeter/internal/scenario"
)

// TenantConfig declares one hosted tenant: a deployment plus its
// monitoring cadence and load model.
type TenantConfig struct {
	// Name addresses the tenant in the API path (/v1/tenants/{name}).
	Name string
	// Monitor parameterizes the tenant's epoch loop (sample rate,
	// virtual interval, operator actions, thresholds). Epochs is
	// ignored — the daemon steps for as long as it runs.
	Monitor monitor.Config
	// Capacity is the per-site capacity in queries/day (0 or missing =
	// undeclared); the sites endpoint reports utilization against it.
	Capacity []float64
}

// Tenant hosts one deployment inside the server: the scenario, its
// stepwise monitoring session, and the atomically published snapshot.
// The write side (Advance) is serialized by a mutex; the read side
// (Lookup, Current) is lock-free — one atomic pointer load per query.
type Tenant struct {
	Name string

	scn  *scenario.Scenario
	cfg  TenantConfig
	sess *monitor.Session
	log  *querylog.Log

	// mu serializes epoch steps and guards the session's accumulated
	// state (series, events). Never held on the lookup path.
	mu   sync.Mutex
	snap atomic.Pointer[Snapshot]

	// nlookups is the per-tenant lookup sequence number, mixed into the
	// latency-sampling decision so the sample is spread over *lookups*
	// rather than addresses. Only bumped when the histogram is live.
	nlookups atomic.Uint64

	lookups *obsv.Counter
	swaps   *obsv.Counter
	epochs  *obsv.Counter
	lookupH *obsv.Histogram
	epochH  *obsv.Histogram
}

// NewTenant wires a tenant over the scenario. The scenario is owned by
// the tenant from here on (its clock and routing advance with every
// epoch); hand over a Fork to keep an original pristine. The obsv
// registry may be nil (instrumentation disabled, zero cost).
func NewTenant(scn *scenario.Scenario, cfg TenantConfig, obs *obsv.Registry) (*Tenant, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("server: tenant needs a name")
	}
	if strings.ContainsAny(cfg.Name, "/ \t") {
		return nil, fmt.Errorf("server: tenant name %q must not contain '/' or whitespace", cfg.Name)
	}
	t := &Tenant{
		Name: cfg.Name,
		scn:  scn,
		cfg:  cfg,
		sess: monitor.NewSession(scn, cfg.Monitor),
		log:  cfg.Monitor.LoadLog,
	}
	if obs != nil {
		t.lookups = obs.Counter("server_lookups", "catchment lookups answered")
		t.swaps = obs.Counter("server_snapshot_swaps", "snapshots atomically published")
		t.epochs = obs.Counter("server_epochs_"+metricName(cfg.Name),
			"epochs completed for tenant "+cfg.Name)
		t.lookupH = obs.Histogram("server_lookup_seconds",
			"sampled lookup latency (1 in 1024 lookups timed)", nil)
		t.epochH = obs.Histogram("server_epoch_seconds",
			"wall time per epoch step (measure + classify + snapshot build)", nil)
	}
	return t, nil
}

// Scenario exposes the tenant's deployment (the write side owns it; use
// from tests and the daemon's shutdown path only).
func (t *Tenant) Scenario() *scenario.Scenario { return t.scn }

// Advance steps one monitoring epoch — world hooks, operator actions,
// measurement (sampled or full), drift classification — then builds and
// atomically publishes the epoch's snapshot. full forces a whole-
// hitlist re-probe even in sampling mode (the sweep trigger). Readers
// keep answering from the previous snapshot for the entire step; the
// swap is one pointer store.
func (t *Tenant) Advance(full bool) (monitor.EpochResult, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	start := time.Now()
	forced := full && t.sess.Epochs() > 0 && t.sess.Config().Sample > 0
	if full {
		t.sess.ForceFull()
	}
	er, err := t.sess.Step()
	if err != nil {
		return er, err
	}
	sn := BuildSnapshot(t.Name, er.Epoch, forced, t.scn, er.Map, t.log, t.cfg.Capacity)
	t.snap.Store(sn)
	t.swaps.Inc()
	t.epochs.Inc()
	t.epochH.ObserveDuration(time.Since(start))
	return er, nil
}

// Current returns the latest published snapshot (nil before the
// baseline epoch completes). Lock-free.
func (t *Tenant) Current() *Snapshot { return t.snap.Load() }

// Lookup answers a catchment query from the current snapshot. This is
// the production read path: one atomic load, one binary search, no
// locks, no allocation. A concurrent Advance never blocks it — the
// lookup answers wholly from whichever snapshot it loaded.
//
// Latency is sampled into the server_lookup_seconds histogram at 1 in
// 1024 lookups on average. The decision mixes the per-tenant lookup
// sequence number (Knuth multiplicative hash) with the queried address:
// keying off the address alone would pin the sample to a fixed 1/1024
// of the address space, so a skewed workload — one hot resolver, a
// sequential scan — would be timed either always or never. The mixed
// key guarantees every address pattern is sampled at the intended rate
// while the histogram itself never becomes the bottleneck it watches.
func (t *Tenant) Lookup(a ipv4.Addr) (LookupResult, bool) {
	sn := t.snap.Load()
	if sn == nil {
		return LookupResult{Site: -1}, false
	}
	if t.lookupH != nil && (uint32(a)^uint32(t.nlookups.Add(1)*2654435761))&1023 == 7 {
		start := time.Now()
		r, ok := sn.Lookup(a)
		t.lookupH.ObserveDuration(time.Since(start))
		t.lookups.Inc()
		return r, ok
	}
	r, ok := sn.Lookup(a)
	t.lookups.Inc()
	return r, ok
}

// Epoch returns the latest published epoch, -1 before the baseline.
func (t *Tenant) Epoch() int {
	if sn := t.snap.Load(); sn != nil {
		return sn.Epoch
	}
	return -1
}

// Events returns the drift events recorded at epoch >= since, in epoch
// order — the drift API. The write-side lock is held only long enough
// to snapshot the event log's slice header: events are append-only and
// never mutated in place, so the boundary search and copy run outside
// the lock and an in-flight Advance is never stalled behind a large
// poll.
func (t *Tenant) Events(since int) []dataset.Event {
	t.mu.Lock()
	evs := t.sess.Result().Events
	t.mu.Unlock()
	i := sort.Search(len(evs), func(i int) bool { return evs[i].Epoch >= since })
	out := make([]dataset.Event, len(evs)-i)
	copy(out, evs[i:])
	return out
}

// PredictStats returns the session's accumulated predicted-vs-observed
// tally (hits, misses, strata skipped without probing) and whether the
// probe-free fast path is enabled for this tenant. Totals are zero
// until prediction has run an epoch.
func (t *Tenant) PredictStats() (hits, misses, skipped int, enabled bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	res := t.sess.Result()
	return res.PredictHits, res.PredictMisses, res.PredictSkippedStrata, t.cfg.Monitor.Predict
}

// Series returns the tenant's delta-encoded monitoring series — the
// same dataset v3 state a cmd/verfploeter -monitor -save-series run
// produces, byte-identical for the same scenario and cadence. Call
// after the epoch loop has stopped (shutdown) or between Advances.
func (t *Tenant) Series() *dataset.Series {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sess.Series()
}

// metricName collapses a tenant name to a Prometheus-safe suffix.
func metricName(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
