module verfploeter

go 1.22
