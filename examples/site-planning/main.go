// Site planning (paper §7): use the RTTs measured during catchment
// mapping to decide where the next anycast sites should go, and how the
// accuracy of load predictions decays as the measurement data ages.
//
//	go run ./examples/site-planning
package main

import (
	"fmt"
	"log"
	"time"

	"verfploeter"
)

func main() {
	log.SetFlags(0)
	d := verfploeter.BRoot(verfploeter.SizeMedium, 17)

	catch, stats, err := d.Map(1)
	if err != nil {
		log.Fatal(err)
	}
	dayLog := d.RootLog()

	fmt.Printf("measured %d blocks; median probe RTT %v\n\n",
		catch.Len(), stats.MedianRTT.Round(time.Millisecond))

	// --- Where should B-Root's next sites go? (§7) ---
	recs, model, err := d.RecommendSites(catch, dayLog, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RTT model calibrated from %d measured blocks: %.0fms base + %.2fms per degree-unit\n\n",
		model.Samples, float64(model.Base)/1e6, float64(model.PerUnit)/1e6)
	fmt.Println("greedy expansion plan (load-weighted mean RTT):")
	fmt.Printf("%-14s %14s %14s %14s\n", "add site", "before", "after", "load improved")
	for _, r := range recs {
		fmt.Printf("%-14s %14v %14v %13.0f%%\n", r.Name,
			r.MeanRTTBefore.Round(time.Millisecond),
			r.MeanRTTAfter.Round(time.Millisecond),
			100*r.LoadImproved)
	}

	// --- How fast do measurements go stale? (§5.5) ---
	fmt.Println("\nprediction accuracy vs measurement age:")
	est0 := d.PredictLoad(catch, dayLog, verfploeter.ByQueries)

	// A "month" later the Internet's tie-breaks have drifted.
	d.SetEpoch(1)
	freshCatch, _, err := d.Map(2)
	if err != nil {
		log.Fatal(err)
	}
	actual := d.ActualLoad(dayLog, verfploeter.ByQueries)
	actualLAX := actual[0] / (actual[0] + actual[1])
	estFresh := d.PredictLoad(freshCatch, dayLog, verfploeter.ByQueries)

	fmt.Printf("%-40s %6.1f%%\n", "stale prediction (month-old catchment)", 100*est0.Fraction(0))
	fmt.Printf("%-40s %6.1f%%\n", "fresh prediction (current catchment)", 100*estFresh.Fraction(0))
	fmt.Printf("%-40s %6.1f%%   <- ground truth\n", "actual load now", 100*actualLAX)
	fmt.Println("\nthe paper's advice holds: re-measure before you re-engineer.")
}
