// B-Root case study (paper §5-6.1): compare Verfploeter against RIPE
// Atlas coverage, calibrate the catchment with query-log load, validate
// the prediction against measured truth, and sweep AS-path prepending.
//
//	go run ./examples/broot
package main

import (
	"fmt"
	"log"

	"verfploeter"
)

func main() {
	log.SetFlags(0)
	d := verfploeter.BRoot(verfploeter.SizeMedium, 7)

	// --- Coverage: Verfploeter vs a RIPE-Atlas-style platform ---
	catch, _, err := d.Map(1)
	if err != nil {
		log.Fatal(err)
	}
	atlasPlatform := d.NewAtlas(300) // scaled-down stand-in for 9.8k VPs
	ar := d.MapAtlas(atlasPlatform, 0)
	cov := d.CompareCoverage(ar, catch)

	fmt.Println("== coverage (paper Table 4) ==")
	fmt.Printf("%-28s %10s %12s\n", "", "Atlas", "Verfploeter")
	fmt.Printf("%-28s %10d %12d\n", "considered (VPs / blocks)", cov.AtlasVPsConsidered, cov.VerfConsidered)
	fmt.Printf("%-28s %10d %12d\n", "non-responding", cov.AtlasVPsNonResponding, cov.VerfNonResponding)
	fmt.Printf("%-28s %10d %12d\n", "responding", cov.AtlasVPsResponding, cov.VerfResponding)
	fmt.Printf("%-28s %10d %12d\n", "geolocatable blocks", cov.AtlasBlocksResponding, cov.VerfGeolocatable)
	fmt.Printf("%-28s %10d %12d\n", "unique blocks", cov.AtlasUnique, cov.VerfUnique)
	fmt.Printf("coverage ratio: %.0fx (paper: 430x at full Internet scale)\n\n", cov.Ratio)

	// --- Load calibration (paper §5.4-5.5, Table 6) ---
	dayLog := d.RootLog()
	est := d.PredictLoad(catch, dayLog, verfploeter.ByQueries)
	actual := d.ActualLoad(dayLog, verfploeter.ByQueries)
	actualLAX := actual[0] / (actual[0] + actual[1])

	fmt.Println("== percent-to-LAX by method (paper Table 6) ==")
	fmt.Printf("%-32s %6.1f%%\n", "Atlas VPs", 100*ar.SiteFractions()[0])
	fmt.Printf("%-32s %6.1f%%\n", "Verfploeter blocks", 100*catch.Fraction(0))
	fmt.Printf("%-32s %6.1f%%\n", "Verfploeter + load weighting", 100*est.Fraction(0))
	fmt.Printf("%-32s %6.1f%%  <- ground truth\n", "actual measured load", 100*actualLAX)
	fmt.Printf("mapped %.1f%% of traffic-sending blocks carrying %.1f%% of queries (paper: 87.1%% / 82.4%%)\n\n",
		100*est.MappedBlockFraction(), 100*est.MappedQueryFraction())

	// --- AS-path prepending sweep (paper Figure 5) ---
	fmt.Println("== prepending sweep: fraction to LAX (paper Figure 5) ==")
	fmt.Printf("%-10s %12s %14s\n", "config", "Atlas VPs", "Verfploeter")
	configs := []struct {
		name string
		pp   []int
	}{
		{"+1 LAX", []int{1, 0}},
		{"equal", []int{0, 0}},
		{"+1 MIA", []int{0, 1}},
		{"+2 MIA", []int{0, 2}},
		{"+3 MIA", []int{0, 3}},
	}
	for i, cfg := range configs {
		d.SetPrepends(cfg.pp)
		c, _, err := d.Map(uint16(10 + i))
		if err != nil {
			log.Fatal(err)
		}
		a := d.MapAtlas(atlasPlatform, uint32(10+i))
		atlasLAX := 0.0
		if f := a.SiteFractions(); len(f) > 0 {
			atlasLAX = f[0]
		}
		fmt.Printf("%-10s %11.1f%% %13.1f%%\n", cfg.name, 100*atlasLAX, 100*c.Fraction(0))
	}
	d.SetPrepends(nil)

	// --- Hourly load projection (paper Figure 6) ---
	fmt.Println("\n== predicted load by hour, equal announcement (paper Figure 6) ==")
	h := d.PredictHourly(catch, dayLog, verfploeter.ByQueries)
	fmt.Printf("%4s %10s %10s %10s\n", "hour", "LAX q/s", "MIA q/s", "unknown")
	for hour := 0; hour < 24; hour += 3 {
		fmt.Printf("%4d %10.0f %10.0f %10.0f\n",
			hour, h.QPS[hour][0], h.QPS[hour][1], h.QPS[hour][2])
	}
}
