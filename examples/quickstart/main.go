// Quickstart: map the catchment of a two-site anycast service.
//
// This is the paper's core loop in ~30 lines: build a deployment, run one
// Verfploeter round (ICMP probes to every hitlist /24, sourced from the
// anycast prefix), and read off which site each responding block reaches.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"verfploeter"
)

func main() {
	log.SetFlags(0)

	// B-Root after its May 2017 anycast deployment: LAX + MIA.
	d := verfploeter.BRoot(verfploeter.SizeSmall, 42)

	catch, stats, err := d.Map(1)
	if err != nil {
		log.Fatalf("measurement failed: %v", err)
	}

	fmt.Printf("probed %d /24 blocks in %v of virtual time\n", stats.Sent, stats.Elapsed)
	fmt.Printf("replies kept after cleaning: %d (dups %d, unsolicited %d, late %d)\n",
		stats.Clean.Kept, stats.Clean.Duplicates, stats.Clean.Unsolicited, stats.Clean.Late)

	counts := catch.Counts()
	for i, code := range d.SiteCodes() {
		fmt.Printf("site %-4s %7d blocks (%5.1f%%)\n",
			code, counts[i], 100*catch.Fraction(i))
	}

	fmt.Println("\ncatchment map (L=LAX, M=MIA, .=no data):")
	if err := d.RenderCatchmentMap(os.Stdout, catch); err != nil {
		log.Fatal(err)
	}
}
