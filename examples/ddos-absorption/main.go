// DDoS absorption planning (paper §1, §6.1): anycast blunts attacks by
// spreading them over catchments — if the split matches per-site
// capacity. This example maps the catchment, overlays a synthetic
// botnet's origin distribution, and sweeps prepending plans on the §3.1
// test prefix to find an announcement that absorbs the attack, all
// without touching production routing.
//
// Part two hands the same problem to the playbook engine: it enumerates
// the full candidate grammar (prepend ladders, withdrawals), predicts
// each candidate's catchment from the control plane, and ranks them by
// absorption against collateral load shift — the automated version of
// the manual sweep above.
//
//	go run ./examples/ddos-absorption
package main

import (
	"fmt"
	"log"

	"verfploeter"
)

func main() {
	log.SetFlags(0)
	d := verfploeter.BRoot(verfploeter.SizeMedium, 23)

	normal := d.RootLog()
	attack := d.BotnetLog(5 * normal.TotalQPD()) // a 5x volumetric attack

	// Per-site capacity in units of normal daily volume.
	capacity := []float64{5.2, 2.2}
	fmt.Printf("attack: %.0fx normal volume; capacity LAX %.1fx, MIA %.1fx\n\n",
		attack.TotalQPD()/normal.TotalQPD(), capacity[0], capacity[1])

	configs := [][]int{{1, 0}, {0, 0}, {0, 1}}
	names := []string{"prepend LAX+1", "announce equal", "prepend MIA+1"}

	fmt.Printf("%-16s %10s %10s %8s\n", "plan", "LAX util", "MIA util", "verdict")
	bestName, bestPeak := "", 2.0
	for i, pp := range configs {
		// Candidate announced on the test prefix only (§3.1).
		d.AnnounceTest(pp, 0)
		catch, _, err := d.MeasureTest(uint16(10 + i))
		if err != nil {
			log.Fatal(err)
		}
		en := d.PredictLoad(catch, normal, verfploeter.ByQueries)
		ea := d.PredictLoad(catch, attack, verfploeter.ByQueries)
		ok := true
		peak := 0.0
		var util [2]float64
		for s := 0; s < 2; s++ {
			total := en.Fraction(s) + 5*ea.Fraction(s) // in normal-volume units
			util[s] = total / capacity[s]
			if util[s] > 1 {
				ok = false
			}
			if util[s] > peak {
				peak = util[s]
			}
		}
		verdict := "overload"
		if ok {
			verdict = "absorbs"
			if peak < bestPeak {
				bestName, bestPeak = names[i], peak
			}
		}
		fmt.Printf("%-16s %9.0f%% %9.0f%% %8s\n", names[i], 100*util[0], 100*util[1], verdict)
	}

	if bestName != "" {
		fmt.Printf("\nplan of record: %s (peak site utilization %.0f%%)\n", bestName, 100*bestPeak)
		fmt.Println("apply it to production only when the attack hits — the test prefix")
		fmt.Println("already proved the catchment it will produce.")
	} else {
		fmt.Println("\nno plan absorbs this attack; aggregate capacity is short.")
	}

	// Part two: the playbook engine automates the sweep. Same deployment,
	// but a concentrated attack (a botnet herd in a dozen origin ASes)
	// and the full candidate grammar instead of three hand-picked plans.
	mix, err := verfploeter.ParseAttackMix("shape=concentrated,volume=5x,ases=12,seed=9")
	if err != nil {
		log.Fatal(err)
	}
	herd := d.AttackLog(mix, normal.TotalQPD())
	mia := d.MustSite("mia")
	plan := d.SearchPlaybook(verfploeter.PlaybookConfig{
		Target:   mia,
		Capacity: []float64{capacity[0] * normal.TotalQPD(), capacity[1] * normal.TotalQPD()},
		Normal:   normal,
		Attack:   herd,
	})
	chosen, hold := plan.Chosen(), plan.Hold()
	fmt.Printf("\nplaybook search over %d candidates against %s:\n", len(plan.Candidates), mix)
	fmt.Printf("chosen %s: MIA util %.0f%% -> %.0f%%, absorption %.0f%%, collateral +%.2f\n",
		chosen.Label, 100*hold.Util[mia], 100*chosen.Util[mia],
		100*chosen.Absorption, chosen.Collateral)
}
