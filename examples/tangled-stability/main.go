// Tangled stability study (paper §6.2-6.3): run a multi-round campaign
// over the nine-site testbed, classify VP transitions (Figure 9),
// attribute catchment flips to ASes (Table 7), and count ASes that are
// split across sites (Figures 7-8).
//
//	go run ./examples/tangled-stability
package main

import (
	"fmt"
	"log"

	"verfploeter"
)

func main() {
	log.SetFlags(0)
	d := verfploeter.Tangled(verfploeter.SizeMedium, 11)

	const nRounds = 12 // the paper runs 96 over 24h; same machinery
	rounds, err := d.MapRounds(nRounds)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== per-site catchment, round 0 (paper Figure 3b) ==\n")
	counts := rounds[0].Counts()
	for i, code := range d.SiteCodes() {
		fmt.Printf("%-4s %7d blocks (%5.1f%%)\n", code, counts[i], 100*rounds[0].Fraction(i))
	}

	fmt.Printf("\n== stability across %d rounds (paper Figure 9) ==\n", nRounds)
	fmt.Printf("%6s %9s %8s %8s %8s\n", "round", "stable", "flipped", "to-NR", "from-NR")
	for _, sr := range d.StabilitySeries(rounds) {
		fmt.Printf("%6d %9d %8d %8d %8d\n",
			sr.Round, sr.Diff.Stable, sr.Diff.Flipped, sr.Diff.ToNR, sr.Diff.FromNR)
	}

	fmt.Println("\n== top ASes involved in site flips (paper Table 7) ==")
	rows := d.FlipASes(rounds)
	fmt.Printf("%8s %-12s %8s %8s %6s\n", "ASN", "name", "blocks", "flips", "frac")
	shown := 0
	for _, r := range rows {
		if shown >= 5 {
			break
		}
		fmt.Printf("%8d %-12s %8d %8d %5.2f\n", r.ASN, r.Name, r.Blocks, r.Flips, r.Frac)
		shown++
	}

	fmt.Println("\n== AS divisions after removing unstable blocks (paper §6.2) ==")
	div := d.Divisions(rounds[0], rounds)
	fmt.Printf("mapped ASes: %d, split across multiple sites: %d (%.1f%%; paper: 12.7%%)\n",
		div.MappedASes, div.SplitASes, 100*div.SplitFrac())
	fmt.Printf("sites-seen histogram: ")
	for k, n := range div.SitesHist {
		fmt.Printf("%d:%d ", k+1, n)
	}
	fmt.Println()

	fmt.Println("\n== announced prefixes vs sites seen (paper Figure 7) ==")
	fmt.Printf("%6s %6s %8s %8s %8s\n", "sites", "ASes", "p25", "median", "p75")
	for _, r := range d.PrefixSpread(rounds[0], rounds) {
		fmt.Printf("%6d %6d %8.1f %8.1f %8.1f\n", r.Sites, r.ASes, r.P25, r.Median, r.P75)
	}

	fmt.Println("\n== sites seen per announced prefix, by prefix length (paper Figure 8) ==")
	fmt.Printf("%6s %9s %12s\n", "len", "prefixes", "multi-site")
	for _, r := range d.SitesByPrefixLen(rounds[0], rounds) {
		fmt.Printf("   /%-3d %9d %11.1f%%\n", r.Bits, r.Prefixes, 100*r.FracMultiSite())
	}
}
