// Regional load study (paper §5.4, Figure 4): why catchment maps must be
// calibrated with load. A root server's clients look like the whole
// Internet; a ccTLD's clients cluster at home. The same catchment split
// can carry wildly different load splits depending on the service.
//
//	go run ./examples/nl-load
package main

import (
	"fmt"
	"log"
	"os"

	"verfploeter"
)

func main() {
	log.SetFlags(0)

	// The .nl-style deployment: four name-server sites, European and US.
	d := verfploeter.NL(verfploeter.SizeMedium, 13)
	catch, _, err := d.Map(1)
	if err != nil {
		log.Fatal(err)
	}

	regional := d.NLLog() // .nl-style: strongly Dutch/European clients
	global := d.RootLog() // root-style: clients everywhere

	fmt.Println("== block catchment vs load split, per weighting (paper §5.4) ==")
	fmt.Printf("%-8s %10s %14s %14s\n", "site", "blocks", "root-style", ".nl-style")
	estG := d.PredictLoad(catch, global, verfploeter.ByQueries)
	estR := d.PredictLoad(catch, regional, verfploeter.ByQueries)
	for i, code := range d.SiteCodes() {
		fmt.Printf("%-8s %9.1f%% %13.1f%% %13.1f%%\n",
			code, 100*catch.Fraction(i), 100*estG.Fraction(i), 100*estR.Fraction(i))
	}
	fmt.Println("\nThe further a service's client base is from uniform, the more")
	fmt.Println("block-counting misleads: calibration with real load is essential.")

	fmt.Println("\n== geography of .nl-style load (paper Figure 4b) ==")
	if err := d.RenderLoadMap(os.Stdout, catch, regional, verfploeter.ByQueries); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== geography of root-style load for the same sites (paper Figure 4a) ==")
	if err := d.RenderLoadMap(os.Stdout, catch, global, verfploeter.ByQueries); err != nil {
		log.Fatal(err)
	}
}
